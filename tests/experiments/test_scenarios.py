"""Tests for scenario builders (structure; behaviour is in integration)."""

import pytest

from repro.experiments.scenarios import (
    NO_DCL_BANDWIDTH_PAIRS,
    STRONG_DCL_BANDWIDTHS,
    WEAK_DCL_BANDWIDTH_PAIRS,
    no_dcl_scenario,
    red_no_dcl_scenario,
    red_strong_scenario,
    strong_dcl_scenario,
    weak_dcl_scenario,
)
from repro.netsim.queues import AdaptiveREDQueue, DropTailQueue


class TestStrongScenario:
    def test_build_produces_ground_truth(self):
        built = strong_dcl_scenario(1.0).build(seed=0)
        assert built.expected_verdict == "strong"
        assert built.dcl_link == "r2->r3"
        assert built.dominant_max_queuing_delay() == pytest.approx(0.16)

    def test_bottleneck_bandwidth_applied(self):
        built = strong_dcl_scenario(0.4).build(seed=0)
        link = built.network.links[("r2", "r3")]
        assert link.bandwidth_bps == pytest.approx(0.4e6)

    def test_all_table2_bandwidths_build(self):
        for bandwidth in STRONG_DCL_BANDWIDTHS:
            built = strong_dcl_scenario(bandwidth).build(seed=0)
            assert built.probe_src in built.network.nodes

    def test_dominant_q_exceeds_other_queues(self):
        # Definition 1's delay condition must be satisfiable.
        built = strong_dcl_scenario(1.0).build(seed=0)
        q = built.max_queuing_delays
        others = sum(v for k, v in q.items() if k != built.dcl_link)
        assert q[built.dcl_link] >= others


class TestWeakScenario:
    def test_dominant_is_slower_link(self):
        with pytest.raises(ValueError):
            weak_dcl_scenario((0.2, 0.7))

    def test_all_table3_pairs_build(self):
        for pair in WEAK_DCL_BANDWIDTH_PAIRS:
            built = weak_dcl_scenario(pair).build(seed=0)
            assert built.expected_verdict == "weak"
            assert built.dcl_link == "r2->r3"

    def test_buffers_match_paper(self):
        built = weak_dcl_scenario().build(seed=0)
        net = built.network
        assert net.links[("r0", "r1")].queue.capacity_bytes == 76_800
        assert net.links[("r1", "r2")].queue.capacity_bytes == 25_600
        assert net.links[("r2", "r3")].queue.capacity_bytes == 25_600


class TestNoDclScenario:
    def test_no_dominant_link_declared(self):
        built = no_dcl_scenario().build(seed=0)
        assert built.dcl_link is None
        with pytest.raises(ValueError):
            built.dominant_max_queuing_delay()

    def test_all_table4_pairs_build(self):
        for pair in NO_DCL_BANDWIDTH_PAIRS:
            built = no_dcl_scenario(pair).build(seed=0)
            assert built.expected_verdict == "none"

    def test_middle_link_has_large_buffer(self):
        built = no_dcl_scenario().build(seed=0)
        assert built.network.links[("r1", "r2")].queue.capacity_bytes == 128_000


class TestRedScenarios:
    def test_red_queues_on_chain(self):
        built = red_strong_scenario(0.5).build(seed=0)
        queue = built.network.links[("r2", "r3")].queue
        assert isinstance(queue, AdaptiveREDQueue)

    def test_min_th_fraction_positions_threshold(self):
        built = red_strong_scenario(0.2).build(seed=0)
        queue = built.network.links[("r2", "r3")].queue
        assert queue.min_th == pytest.approx(5, abs=1)

    def test_small_min_th_expects_misidentification(self):
        scenario = red_strong_scenario(0.2)
        assert scenario.expected_verdict == "strong"
        assert scenario.expected_identification == "none"

    def test_large_min_th_expects_success(self):
        scenario = red_strong_scenario(0.5)
        assert scenario.expected_identification == "strong"

    def test_red_no_dcl_head_link_droptail(self):
        built = red_no_dcl_scenario(0.5).build(seed=0)
        assert isinstance(built.network.links[("r0", "r1")].queue,
                          DropTailQueue)
        assert isinstance(built.network.links[("r1", "r2")].queue,
                          AdaptiveREDQueue)


class TestTrafficMixes:
    def test_tcp_only_builds_without_udp(self):
        built = strong_dcl_scenario(1.0, n_ftp=2, n_web=1,
                                    udp_fraction=0.0).build(seed=0)
        built.network.run(until=5.0)
        # The bottleneck still carries traffic (TCP only).
        assert built.network.links[("r2", "r3")].packets_sent > 0

    def test_udp_only_builds_without_tcp(self):
        built = strong_dcl_scenario(1.0, n_ftp=0, n_web=0,
                                    udp_fraction=1.2).build(seed=0)
        built.network.run(until=5.0)
        assert built.network.links[("r2", "r3")].packets_sent > 0


class TestDeterminism:
    def test_same_seed_same_network(self):
        a = strong_dcl_scenario(1.0).build(seed=5)
        b = strong_dcl_scenario(1.0).build(seed=5)
        link_a = a.network.links[("src0_0", "r0")]
        link_b = b.network.links[("src0_0", "r0")]
        assert link_a.prop_delay == link_b.prop_delay

    def test_scenario_name_reflects_parameters(self):
        assert "0.4" in strong_dcl_scenario(0.4).name
        assert "0.7-0.2" in weak_dcl_scenario((0.7, 0.2)).name
