"""Tests for duration sweeps."""

import numpy as np
import pytest

from repro.core.identify import IdentifyConfig
from repro.experiments.duration import (
    DurationSweep,
    consistency_vs_duration,
    correctness_vs_duration,
)
from repro.models.base import EMConfig
from repro.netsim.trace import ProbeRecord, ProbeTrace


def synthetic_strong_trace(n=6000, q_k=0.1, seed=0):
    rng = np.random.default_rng(seed)
    trace = ProbeTrace(["l0"], 0.02, 0.02, 10)
    queue = 0.0
    for i in range(n):
        queue = min(q_k, max(0.0, queue + rng.uniform(-0.012, 0.015)))
        lost = queue >= q_k - 1e-12 and rng.random() < 0.7
        trace.append(ProbeRecord(i * 0.02, (queue,), 0 if lost else -1))
    return trace


@pytest.fixture(scope="module")
def trace():
    return synthetic_strong_trace()


@pytest.fixture
def fast_config():
    return IdentifyConfig(em=EMConfig(max_iter=30, tol=1e-3))


class TestDurationSweep:
    def test_knee_finds_first_level_crossing(self):
        sweep = DurationSweep([10, 20, 40], [0.5, 0.95, 1.0], n_reps=10)
        assert sweep.knee(0.9) == 20

    def test_knee_none_when_never_reached(self):
        sweep = DurationSweep([10, 20], [0.5, 0.6], n_reps=10)
        assert sweep.knee(0.9) is None

    def test_rows_render(self):
        sweep = DurationSweep([10.0], [0.5], n_reps=10)
        assert "10.0" in sweep.rows()[0]


class TestCorrectness:
    def test_long_segments_identify_correctly(self, trace, fast_config):
        sweep = correctness_vs_duration(
            trace, expected_dcl=True, durations=[60.0], n_reps=5,
            config=fast_config, seed=1,
        )
        assert sweep.ratios[0] >= 0.8

    def test_ratio_improves_with_duration(self, trace, fast_config):
        sweep = correctness_vs_duration(
            trace, expected_dcl=True, durations=[4.0, 60.0], n_reps=6,
            config=fast_config, seed=2,
        )
        assert sweep.ratios[1] >= sweep.ratios[0]

    def test_segments_without_losses_count_as_failures(self, fast_config):
        # A nearly loss-free trace: tiny segments often contain no loss
        # and cannot be identified.
        trace = synthetic_strong_trace(n=4000, seed=3)
        # Remove most losses to make empty segments likely.
        for record in trace.records:
            if record.loss_hop >= 0 and record.send_time % 1.0 > 0.05:
                record.loss_hop = -1
        sweep = correctness_vs_duration(
            trace, expected_dcl=True, durations=[1.0], n_reps=8,
            config=fast_config, seed=3,
        )
        assert sweep.ratios[0] < 1.0


class TestConsistency:
    def test_known_and_unknown_p_agree_on_long_segments(self, trace,
                                                        fast_config):
        observation = trace.observation()
        common = dict(
            reference_accepts_dcl=True,
            durations=[60.0],
            probe_interval=0.02,
            n_reps=4,
            config=fast_config,
            seed=4,
        )
        unknown = consistency_vs_duration(observation, **common)
        known = consistency_vs_duration(observation,
                                        known_propagation=0.02, **common)
        assert unknown.ratios[0] == known.ratios[0]
        assert unknown.label == "unknown P"
        assert known.label == "known P"


class TestParallelSweeps:
    def test_correctness_parallel_matches_serial(self, trace, fast_config):
        kwargs = dict(expected_dcl=True, durations=[30.0, 60.0], n_reps=3,
                      config=fast_config, seed=4)
        serial = correctness_vs_duration(trace, n_jobs=1, **kwargs)
        parallel = correctness_vs_duration(trace, n_jobs=2, **kwargs)
        assert serial.ratios == parallel.ratios

    def test_consistency_parallel_matches_serial(self, trace, fast_config):
        observation = trace.observation()
        kwargs = dict(reference_accepts_dcl=True, durations=[60.0],
                      probe_interval=trace.probe_interval, n_reps=3,
                      config=fast_config, seed=4)
        serial = consistency_vs_duration(observation, n_jobs=1, **kwargs)
        parallel = consistency_vs_duration(observation, n_jobs=2, **kwargs)
        assert serial.ratios == parallel.ratios
