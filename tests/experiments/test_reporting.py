"""Tests for report formatting."""

import numpy as np
import pytest

from repro.experiments.reporting import (
    format_cdf_line,
    format_pmf_series,
    format_table,
)


class TestFormatTable:
    def test_alignment_and_content(self):
        text = format_table(["name", "value"], [["a", 1], ["long-name", 22]])
        lines = text.splitlines()
        assert "name" in lines[0] and "value" in lines[0]
        assert lines[1].startswith("---")
        assert "long-name" in lines[3]

    def test_title_included(self):
        text = format_table(["x"], [[1]], title="Table II")
        assert text.splitlines()[0] == "Table II"

    def test_wide_cells_extend_columns(self):
        text = format_table(["h"], [["wide-content"]])
        header = text.splitlines()[0]
        assert len(header) >= len("wide-content")


class TestPmfSeries:
    def test_rows_per_symbol(self):
        text = format_pmf_series(
            [np.array([0.5, 0.5]), np.array([1.0, 0.0])],
            labels=["ns", "MMHD"],
        )
        lines = text.splitlines()
        assert "ns" in lines[0] and "MMHD" in lines[0]
        assert len(lines) == 2 + 2  # header + rule + 2 symbols

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            format_pmf_series([], labels=[])


class TestCdfLine:
    def test_values_are_cumulative(self):
        line = format_cdf_line(np.array([0.25, 0.25, 0.5]), label="G")
        assert line == "G: 1:0.25 2:0.50 3:1.00"
