"""Tests for the scenario runner."""

import pytest

from repro.experiments.runner import run_scenario
from repro.experiments.scenarios import strong_dcl_scenario


class TestRunScenario:
    @pytest.fixture(scope="class")
    def result(self):
        # One short shared run keeps this module fast.
        return run_scenario(strong_dcl_scenario(1.0), seed=2, duration=40.0,
                            warmup=10.0, with_loss_pairs=True)

    def test_probe_count_matches_duration(self, result):
        assert len(result.trace) == pytest.approx(2000, abs=5)

    def test_probing_starts_after_warmup(self, result):
        assert result.trace.send_times[0] >= 10.0

    def test_losses_present_and_located(self, result):
        assert result.loss_rate > 0.01
        assert result.loss_share_of_dcl() > 0.95

    def test_loss_pair_trace_collected(self, result):
        assert result.losspair_trace is not None
        assert len(result.losspair_trace) == pytest.approx(1000, abs=5)

    def test_ground_truth_available(self, result):
        assert result.built.dominant_max_queuing_delay() == pytest.approx(0.16)

    def test_invalid_duration_rejected(self):
        with pytest.raises(ValueError):
            run_scenario(strong_dcl_scenario(1.0), duration=0)

    def test_invalid_warmup_rejected(self):
        with pytest.raises(ValueError):
            run_scenario(strong_dcl_scenario(1.0), duration=10, warmup=-1)

    def test_loss_pairs_disabled_by_default(self):
        result = run_scenario(strong_dcl_scenario(1.0), seed=3, duration=5.0,
                              warmup=2.0)
        assert result.losspair_trace is None

    def test_runs_reproducible(self):
        a = run_scenario(strong_dcl_scenario(1.0), seed=4, duration=10.0,
                         warmup=2.0)
        b = run_scenario(strong_dcl_scenario(1.0), seed=4, duration=10.0,
                         warmup=2.0)
        assert a.trace.loss_rate == b.trace.loss_rate
        assert (a.trace.lost == b.trace.lost).all()


def _loss_rate_summary(result):
    return {"seed": result.seed, "loss_rate": result.loss_rate,
            "n_probes": len(result.trace)}


class TestRunScenarioSweep:
    @pytest.fixture(scope="class")
    def sweeps(self):
        from repro.experiments.runner import run_scenario_sweep
        kwargs = dict(seeds=[0, 1, 2], duration=5.0, warmup=1.0)
        return (
            run_scenario_sweep(strong_dcl_scenario, n_jobs=1, **kwargs),
            run_scenario_sweep(strong_dcl_scenario, n_jobs=2, **kwargs),
        )

    def test_one_result_per_seed_in_order(self, sweeps):
        serial, _ = sweeps
        assert [r.seed for r in serial] == [0, 1, 2]

    def test_parallel_matches_serial(self, sweeps):
        serial, parallel = sweeps
        for a, b in zip(serial, parallel):
            assert a.trace.loss_rate == b.trace.loss_rate
            assert (a.trace.lost == b.trace.lost).all()

    def test_live_state_stripped_on_both_paths(self, sweeps):
        for sweep in sweeps:
            for result in sweep:
                assert result.built.network is None
                # ...but the scoring surface survives.
                assert result.built.dcl_link == "r2->r3"
                assert result.built.max_queuing_delays

    def test_custom_reduce(self):
        from repro.experiments.runner import run_scenario_sweep
        summaries = run_scenario_sweep(
            strong_dcl_scenario, seeds=[0, 1], duration=5.0, warmup=1.0,
            reduce=_loss_rate_summary, n_jobs=2,
        )
        assert [s["seed"] for s in summaries] == [0, 1]
        assert all(s["n_probes"] > 0 for s in summaries)
