"""Shared fixtures/helpers for the fleet-service tests.

Telemetry state is process-global; every test here runs against a
known-off, empty registry and leaves it that way (mirrors
``tests/obs/conftest.py``).
"""

import json

import pytest

from repro import obs
from repro.models.base import EMConfig
from repro.obs import health as health_mod
from repro.obs import trace as trace_mod
from repro.streaming.tracker import MonitorConfig

FAST_EM = EMConfig(tol=1e-3, max_iter=100, seed=7)


def fast_config(**overrides):
    """The small/fast MonitorConfig the streaming tests standardise on."""
    defaults = dict(window=600, hop=300, n_hidden=1, confirm=2, memory=3,
                    gate_stationarity=False, em=FAST_EM)
    defaults.update(overrides)
    return MonitorConfig(**defaults)


def payload_keys(payloads):
    """Byte-comparable projections of event dicts (wall-clock lag dropped)."""
    keys = []
    for payload in payloads:
        d = dict(payload)
        d.pop("lag_ms", None)
        keys.append(json.dumps(d, sort_keys=True))
    return keys


def event_keys(events):
    """Same projection for offline ``VerdictEvent`` objects."""
    return payload_keys(e.to_dict() for e in events)


def _reset():
    obs.disable()
    trace_mod.disable_tracing()
    health_mod.disable_health()
    obs.registry().clear()
    bus = obs.bus()
    bus.n_emitted = 0
    bus.n_rotations = 0
    bus._taps = ()


@pytest.fixture(autouse=True)
def telemetry_reset():
    _reset()
    yield
    _reset()
