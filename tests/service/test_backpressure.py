"""Tests for the shed/coarsen backpressure policies."""

import pytest

from repro.experiments.streams import strong_dcl_stream
from repro.service.backpressure import BackpressurePolicy
from repro.streaming.scheduler import MultiPathMonitor

from tests.service.conftest import fast_config


def loaded_monitor(n_paths=2, n_records=3000, max_pending=64):
    """A monitor with a real backlog: windows assembled, nothing drained."""
    monitor = MultiPathMonitor(fast_config(), max_pending=max_pending)
    for i in range(n_paths):
        for send_time, delay in strong_dcl_stream(n_records, seed=30 + i):
            monitor.ingest(f"p{i}", send_time, delay)
    return monitor


class TestValidation:
    def test_bad_mode_raises(self):
        with pytest.raises(ValueError, match="mode"):
            BackpressurePolicy(mode="panic")

    def test_watermark_ordering_enforced(self):
        with pytest.raises(ValueError, match="low_watermark"):
            BackpressurePolicy(mode="shed", high_watermark=4,
                               low_watermark=4)

    def test_low_watermark_defaults_to_half(self):
        policy = BackpressurePolicy(mode="shed", high_watermark=10)
        assert policy.low_watermark == 5

    def test_factor_must_be_at_least_two(self):
        with pytest.raises(ValueError, match="factor"):
            BackpressurePolicy(mode="coarsen", factor=1)


class TestOffMode:
    def test_off_never_intervenes(self):
        monitor = loaded_monitor()
        backlog = monitor.n_pending
        assert backlog > 0
        outcome = BackpressurePolicy(mode="off", high_watermark=1).apply(
            monitor)
        assert outcome == {"shed": 0, "coarsened": False, "restored": False}
        assert monitor.n_pending == backlog


class TestShed:
    def test_sheds_down_to_low_watermark(self):
        monitor = loaded_monitor()  # 2 paths x 9 windows = 18 pending
        assert monitor.n_pending == 18
        policy = BackpressurePolicy(mode="shed", high_watermark=8,
                                    low_watermark=4)
        outcome = policy.apply(monitor)
        assert outcome["shed"] == 14
        assert monitor.n_pending == 4
        assert policy.n_shed_windows == 14

    def test_shed_below_watermark_is_a_noop(self):
        monitor = loaded_monitor()
        policy = BackpressurePolicy(mode="shed", high_watermark=100)
        assert policy.apply(monitor)["shed"] == 0
        assert monitor.n_pending == 18

    def test_shed_is_deterministic_and_oldest_first(self):
        """Two identical backlogs shed the identical window set: oldest
        windows first, round-robin across paths in insertion order."""
        shed_sets = []
        for _ in range(2):
            monitor = loaded_monitor()
            policy = BackpressurePolicy(mode="shed", high_watermark=8,
                                        low_watermark=4)
            policy.apply(monitor)
            shed = monitor  # the drop happened via monitor.shed_oldest
            remaining = {path: [w.index for w in state.pending]
                         for path, state in shed._paths.items()}
            shed_sets.append(remaining)
        assert shed_sets[0] == shed_sets[1]
        # Oldest-first: survivors are the most recent windows per path.
        assert shed_sets[0] == {"p0": [7, 8], "p1": [7, 8]}


class TestCoarsen:
    def test_coarsens_then_restores(self):
        monitor = loaded_monitor()
        policy = BackpressurePolicy(mode="coarsen", high_watermark=8,
                                    low_watermark=4, factor=2)
        outcome = policy.apply(monitor)
        assert outcome["coarsened"]
        assert policy.coarsened
        assert monitor.path_hops() == {"p0": 600, "p1": 600}
        assert policy.n_coarsens == 1
        # Still overloaded: no re-coarsen on repeated evaluations.
        assert not policy.apply(monitor)["coarsened"]
        assert monitor.path_hops() == {"p0": 600, "p1": 600}
        monitor.drain()
        assert monitor.n_pending == 0
        outcome = policy.apply(monitor)
        assert outcome["restored"]
        assert not policy.coarsened
        assert monitor.path_hops() == {"p0": 300, "p1": 300}
        assert policy.n_restores == 1

    def test_coarsen_caps_hop_at_window(self):
        monitor = loaded_monitor()
        policy = BackpressurePolicy(mode="coarsen", high_watermark=8,
                                    factor=4)
        policy.apply(monitor)
        # hop 300 * 4 = 1200 capped at the 600-probe window.
        assert monitor.path_hops() == {"p0": 600, "p1": 600}

    def test_restore_skips_deregistered_paths(self):
        monitor = loaded_monitor()
        policy = BackpressurePolicy(mode="coarsen", high_watermark=8,
                                    low_watermark=4)
        policy.apply(monitor)
        monitor.remove_path("p0")
        monitor.drain()
        outcome = policy.apply(monitor)
        assert outcome["restored"]
        assert monitor.path_hops() == {"p1": 300}

    def test_snapshot_reflects_state(self):
        policy = BackpressurePolicy(mode="coarsen", high_watermark=8)
        snapshot = policy.snapshot()
        assert snapshot["mode"] == "coarsen"
        assert snapshot["high_watermark"] == 8
        assert snapshot["low_watermark"] == 4
        assert not snapshot["coarsened"]
        assert snapshot["n_shed_windows"] == 0
