"""Model health through the fleet service: harvest, HTTP API, churn."""

import json
import urllib.error
import urllib.request

import pytest

from repro.obs.health import HealthStore, enable_health
from repro.service import FleetService, ServiceAPI

from tests.service.conftest import fast_config


def request(url):
    with urllib.request.urlopen(
            urllib.request.Request(url), timeout=10) as response:
        return response.status, json.loads(response.read() or b"{}")


def error_of(url):
    with pytest.raises(urllib.error.HTTPError) as excinfo:
        request(url)
    exc = excinfo.value
    return exc.code, json.loads(exc.read())


@pytest.fixture
def bare_api():
    service = FleetService(base_config=fast_config())
    api = ServiceAPI(service, port=0).start()
    yield service, api
    api.close()
    service.close()


@pytest.fixture
def health_api():
    enable_health()
    service = FleetService(base_config=fast_config(),
                           health_store=HealthStore())
    api = ServiceAPI(service, port=0).start()
    yield service, api
    api.close()
    service.close()


def _run_demo(service, path="demo", n=1800, seed=7):
    from repro.service.api import build_source

    service.register(path, source=build_source(
        {"kind": "demo", "n": n, "seed": seed}))
    service.run(exit_when_idle=True, interval=0.0)


class TestRoutesWithoutStore:
    def test_health_404_when_disabled(self, bare_api):
        _, api = bare_api
        code, payload = error_of(f"{api.base_url}/health")
        assert code == 404
        assert "--health" in payload["error"]
        code, _ = error_of(f"{api.base_url}/health/any")
        assert code == 404

    def test_healthz_liveness_stays_distinct(self, bare_api):
        # The k8s-style liveness probe predates /health and must not be
        # shadowed by the model-health surface.
        _, api = bare_api
        req = urllib.request.Request(f"{api.base_url}/healthz")
        with urllib.request.urlopen(req, timeout=10) as response:
            assert response.status == 200
            assert response.read() == b"ok\n"


class TestHealthEndpoints:
    def test_fleet_rollup_after_a_run(self, health_api):
        service, api = health_api
        _run_demo(service)
        status, payload = request(f"{api.base_url}/health")
        assert status == 200
        assert payload["n_paths"] == 1
        assert "demo" in payload["paths"]
        latest = payload["paths"]["demo"]
        assert set(latest) >= {"path", "window", "health", "reasons",
                               "alarms", "confidence"}

    def test_per_path_reports_in_window_order(self, health_api):
        service, api = health_api
        _run_demo(service)
        status, payload = request(f"{api.base_url}/health/demo")
        assert status == 200
        assert payload["path"] == "demo"
        reports = payload["reports"]
        assert len(reports) == 5  # one per published window
        assert [r["window"] for r in reports] == [0, 1, 2, 3, 4]
        scored = [r for r in reports if r["health"] is not None]
        assert scored, "a clean demo stream must produce scored windows"
        for report in scored:
            assert 0.0 <= report["health"] <= 1.0
            assert report["gof"]["ok"] is True

    def test_unknown_path_is_404(self, health_api):
        _, api = health_api
        code, _ = error_of(f"{api.base_url}/health/ghost")
        assert code == 404

    def test_registered_quiet_path_is_empty_not_404(self, health_api):
        service, api = health_api
        service.register("quiet")
        status, payload = request(f"{api.base_url}/health/quiet")
        assert status == 200
        assert payload["reports"] == []


class TestChurn:
    def test_deregister_forgets_health(self, health_api):
        service, api = health_api
        _run_demo(service)
        assert service.health_store.paths() == ["demo"]
        service.deregister("demo")
        assert service.health_store.paths() == []
        code, _ = error_of(f"{api.base_url}/health/demo")
        assert code == 404
        _, payload = request(f"{api.base_url}/health")
        assert payload["n_paths"] == 0
