"""Tests for the runtime path registry (generations, overrides, admission)."""

import pytest

from repro.service.registry import (ACTIVE, PAUSED, PathRegistry,
                                    merge_config)

from tests.service.conftest import fast_config


class TestLifecycle:
    def test_register_and_len(self):
        reg = PathRegistry(fast_config())
        entry = reg.register("pA")
        assert entry.path == "pA"
        assert entry.status == ACTIVE
        assert entry.generation == 1
        assert "pA" in reg
        assert len(reg) == 1

    def test_register_duplicate_raises(self):
        reg = PathRegistry(fast_config())
        reg.register("pA")
        with pytest.raises(ValueError, match="already registered"):
            reg.register("pA")

    def test_register_empty_id_raises(self):
        with pytest.raises(ValueError, match="non-empty"):
            PathRegistry(fast_config()).register("")

    def test_deregister_unknown_raises(self):
        with pytest.raises(KeyError):
            PathRegistry(fast_config()).deregister("ghost")

    def test_register_paused(self):
        reg = PathRegistry(fast_config())
        assert reg.register("pA", paused=True).status == PAUSED

    def test_pause_resume_idempotent(self):
        reg = PathRegistry(fast_config())
        reg.register("pA")
        assert reg.pause("pA").status == PAUSED
        assert reg.pause("pA").status == PAUSED
        assert reg.resume("pA").status == ACTIVE
        assert reg.resume("pA").status == ACTIVE

    def test_counts_always_carry_both_statuses(self):
        reg = PathRegistry(fast_config())
        assert reg.counts() == {ACTIVE: 0, PAUSED: 0}
        reg.register("pA")
        reg.register("pB", paused=True)
        assert reg.counts() == {ACTIVE: 1, PAUSED: 1}

    def test_entries_in_registration_order(self):
        reg = PathRegistry(fast_config())
        for name in ("pC", "pA", "pB"):
            reg.register(name)
        assert [e.path for e in reg.entries()] == ["pC", "pA", "pB"]


class TestGenerations:
    def test_generation_survives_deregistration(self):
        reg = PathRegistry(fast_config())
        assert reg.register("pA").generation == 1
        reg.deregister("pA")
        assert reg.register("pA").generation == 2
        reg.deregister("pA")
        assert reg.register("pA").generation == 3

    def test_generations_are_per_path(self):
        reg = PathRegistry(fast_config())
        reg.register("pA")
        reg.deregister("pA")
        reg.register("pA")
        assert reg.register("pB").generation == 1


class TestAdmission:
    def test_active_path_admits(self):
        reg = PathRegistry(fast_config())
        reg.register("pA")
        assert reg.admit("pA") is None
        assert reg.admit("pA", generation=1) is None

    def test_unregistered_drops(self):
        reg = PathRegistry(fast_config())
        assert reg.admit("ghost") == "unregistered"

    def test_paused_drops(self):
        reg = PathRegistry(fast_config())
        reg.register("pA", paused=True)
        assert reg.admit("pA") == "paused"

    def test_stale_generation_drops_deterministically(self):
        """Late records from a deregistered incarnation never leak into
        the re-registered path's windows."""
        reg = PathRegistry(fast_config())
        reg.register("pA")
        reg.deregister("pA")
        assert reg.admit("pA", generation=1) == "unregistered"
        reg.register("pA")  # generation 2
        assert reg.admit("pA", generation=1) == "stale-generation"
        assert reg.admit("pA", generation=2) is None

    def test_stale_beats_paused_in_reason_order(self):
        reg = PathRegistry(fast_config())
        reg.register("pA")
        reg.deregister("pA")
        reg.register("pA", paused=True)
        assert reg.admit("pA", generation=1) == "stale-generation"
        assert reg.admit("pA", generation=2) == "paused"


class TestConfigOverrides:
    def test_no_overrides_shares_the_base_object(self):
        """Identity matters: shared config keeps the fused drain grouping
        every no-override path into one mega-batch."""
        base = fast_config()
        assert merge_config(base, None) is base
        assert merge_config(base, {}) is base

    def test_override_fields_apply(self):
        base = fast_config()
        merged = merge_config(base, {"window": 900, "hop": 450,
                                     "confirm": 3})
        assert (merged.window, merged.hop, merged.confirm) == (900, 450, 3)
        assert merged.n_hidden == base.n_hidden
        assert merged.em is base.em

    def test_window_override_rederives_hop(self):
        merged = merge_config(fast_config(), {"window": 1000})
        assert merged.hop == 500  # 50% overlap, not the base's 300

    def test_unknown_override_raises(self):
        with pytest.raises(ValueError, match="unknown config override"):
            merge_config(fast_config(), {"widnow": 900})

    def test_registry_materialises_merged_config(self):
        reg = PathRegistry(fast_config())
        entry = reg.register("pA", overrides={"window": 800})
        assert entry.config.window == 800
        assert entry.overrides == {"window": 800}
        plain = reg.register("pB")
        assert plain.config is reg.base_config

    def test_to_dict_projection(self):
        reg = PathRegistry(fast_config())
        payload = reg.register("pA", overrides={"confirm": 3}).to_dict()
        assert payload["path"] == "pA"
        assert payload["generation"] == 1
        assert payload["status"] == ACTIVE
        assert payload["overrides"] == {"confirm": 3}
        assert payload["n_records"] == 0
        assert payload["n_dropped"] == 0
