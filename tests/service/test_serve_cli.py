"""Tests for the ``repro serve`` CLI subcommand."""

import json

import numpy as np
import pytest

from repro.cli import build_parser, main
from repro.experiments.streams import strong_dcl_stream
from repro.measurement.traceio import save_observation
from repro.netsim.trace import PathObservation


def stream_csv(tmp_path, n=1500, seed=20, name="obs.csv"):
    send_times, delays = zip(*strong_dcl_stream(n, seed=seed))
    path = tmp_path / name
    save_observation(PathObservation(np.array(send_times), np.array(delays)),
                     path)
    return path


def serve_args(*extra):
    return ["serve", "--window", "600", "--hop", "300", "--hidden", "1",
            "--confirm", "2", "--memory", "3", "--no-stationarity-gate",
            "--exit-when-idle", "--interval", "0.01", *extra]


def emitted_events(capsys):
    out = capsys.readouterr().out
    return [json.loads(line) for line in out.splitlines() if line.strip()]


class TestParsing:
    def test_serve_command_parses(self):
        args = build_parser().parse_args(
            ["serve", "a.csv", "--port", "8123", "--backpressure", "shed",
             "--high-watermark", "32", "--demo", "--demo-paths", "4"])
        assert args.inputs == ["a.csv"]
        assert args.port == 8123
        assert args.backpressure == "shed"
        assert args.high_watermark == 32
        assert args.demo == 8000
        assert args.demo_paths == 4
        assert args.alert_rules == "default"

    def test_bad_backpressure_mode_rejected(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["serve", "--backpressure", "panic"])


class TestServeRuns:
    def test_demo_paths_emit_jsonl_verdicts(self, capsys):
        code = main(serve_args("--demo", "1500", "--demo-paths", "2",
                               "--seed", "20"))
        captured = capsys.readouterr()
        events = [json.loads(line) for line in captured.out.splitlines()
                  if line.strip()]
        assert code == 0
        assert {e["path"] for e in events} == {"demo-0", "demo-1"}
        for path in ("demo-0", "demo-1"):
            windows = [e["window"] for e in events if e["path"] == path]
            assert windows == [0, 1, 2, 3]
        assert "service: http://127.0.0.1:" in captured.err

    def test_csv_inputs_registered_as_paths(self, tmp_path, capsys):
        csv_path = stream_csv(tmp_path)
        code = main(serve_args(str(csv_path), "--quiet"))
        assert code == 0
        assert emitted_events(capsys) == []  # --quiet suppresses JSONL

    def test_serve_matches_monitor_verdicts(self, tmp_path, capsys):
        """The service CLI and the one-shot monitor CLI agree byte for
        byte on the same observation file (modulo wall-clock lag)."""
        csv_path = stream_csv(tmp_path)
        main(serve_args(str(csv_path)))
        served = emitted_events(capsys)
        main(["monitor", "--window", "600", "--hop", "300", "--hidden", "1",
              "--confirm", "2", "--memory", "3", "--no-stationarity-gate",
              str(csv_path)])
        monitored = emitted_events(capsys)

        def strip(events):
            return [json.dumps({k: v for k, v in e.items() if k != "lag_ms"},
                               sort_keys=True) for e in events]

        assert strip(served) == strip(monitored)
        assert len(served) == 4

    def test_metrics_file_written(self, tmp_path, capsys):
        metrics = tmp_path / "metrics.prom"
        code = main(serve_args("--demo", "900", "--quiet",
                               "--metrics-file", str(metrics)))
        assert code == 0
        text = metrics.read_text()
        assert "repro_service_rounds_total" in text
        assert "repro_service_records_total 900" in text
        assert 'repro_service_paths{status="active"} 1' in text

    def test_shed_backpressure_via_cli(self, capsys):
        code = main(serve_args("--demo", "6000", "--quiet",
                               "--backpressure", "shed",
                               "--high-watermark", "4",
                               "--low-watermark", "2",
                               "--max-pending", "64"))
        assert code == 0

    def test_telemetry_stream_is_schema_valid(self, tmp_path, capsys):
        from repro.obs import schema

        events_path = tmp_path / "events.jsonl"
        code = main(serve_args("--demo", "900", "--quiet",
                               "--telemetry", str(events_path)))
        assert code == 0
        events = [json.loads(line)
                  for line in events_path.read_text().splitlines()]
        kinds = {e["kind"] for e in events}
        assert {"service.path", "service.round", "run.manifest"} <= kinds
        for event in events:
            assert schema.validate_event(event) == [], event
