"""Tests for the non-blocking ingest sources."""

import io
import math

import pytest

from repro.service.ingest import (IterableSource, QueueSource, StreamSource,
                                  TailSource)


class TestIterableSource:
    def test_polls_in_bursts_then_exhausts(self):
        source = IterableSource((float(i), 0.01 * i) for i in range(5))
        assert source.poll(3) == [(0.0, 0.0), (1.0, 0.01), (2.0, 0.02)]
        assert not source.exhausted
        assert source.poll(3) == [(3.0, 0.03), (4.0, 0.04)]
        assert source.exhausted
        assert source.poll(3) == []

    def test_empty_iterable_exhausts_immediately(self):
        source = IterableSource([])
        assert source.poll(4) == []
        assert source.exhausted


class TestQueueSource:
    def test_poll_drains_without_blocking(self):
        source = QueueSource()
        assert source.poll(4) == []  # empty queue returns immediately
        source.push(0.0, 0.01)
        source.push(0.02, 0.02)
        assert source.poll(4) == [(0.0, 0.01), (0.02, 0.02)]
        assert not source.exhausted

    def test_end_marks_exhausted_after_drain(self):
        source = QueueSource()
        source.push(0.0, 0.01)
        source.end()
        assert source.poll(10) == [(0.0, 0.01)]
        assert source.exhausted

    def test_burst_limit_respected(self):
        source = QueueSource()
        for i in range(5):
            source.push(float(i), 0.01)
        assert len(source.poll(2)) == 2
        assert len(source.poll(10)) == 3


class TestTailSource:
    def _write(self, path, rows, header=True):
        lines = (["send_time,delay"] if header else []) + rows
        path.write_text("\n".join(lines) + "\n")

    def test_reads_csv_and_exhausts_at_eof(self, tmp_path):
        csv = tmp_path / "obs.csv"
        self._write(csv, ["0.0,0.021", "0.02,lost", "0.04,0.023"])
        source = TailSource(csv)
        records = source.poll(10)
        assert len(records) == 3
        assert records[0] == (0.0, 0.021)
        assert math.isnan(records[1][1])  # 'lost' marker
        assert records[2] == (0.04, 0.023)
        assert source.exhausted

    def test_follow_picks_up_appends(self, tmp_path):
        csv = tmp_path / "obs.csv"
        self._write(csv, ["0.0,0.021"])
        source = TailSource(csv, follow=True)
        assert source.poll(10) == [(0.0, 0.021)]
        assert not source.exhausted  # EOF just means "nothing yet"
        with csv.open("a") as handle:
            handle.write("0.02,0.022\n")
        assert source.poll(10) == [(0.02, 0.022)]
        source.close()

    def test_follow_buffers_partial_trailing_line(self, tmp_path):
        csv = tmp_path / "obs.csv"
        csv.write_text("send_time,delay\n0.0,0.021\n0.02,0.0")
        source = TailSource(csv, follow=True)
        assert source.poll(10) == [(0.0, 0.021)]  # partial row held back
        with csv.open("a") as handle:
            handle.write("22\n")
        assert source.poll(10) == [(0.02, 0.022)]
        source.close()

    def test_malformed_row_raises(self, tmp_path):
        csv = tmp_path / "obs.csv"
        self._write(csv, ["0.0,garbage"])
        source = TailSource(csv)
        with pytest.raises(ValueError, match="bad observation row"):
            source.poll(10)

    def test_missing_file_raises_at_construction(self, tmp_path):
        with pytest.raises(OSError):
            TailSource(tmp_path / "ghost.csv")

    def test_close_is_idempotent(self, tmp_path):
        csv = tmp_path / "obs.csv"
        self._write(csv, ["0.0,0.021"])
        source = TailSource(csv)
        source.close()
        source.close()
        assert source.poll(10) == []


class TestStreamSource:
    def test_reads_in_memory_stream_to_eof(self):
        stream = io.StringIO("send_time,delay\n0.0,0.021\n0.02,lost\n")
        source = StreamSource(stream, name="test")
        records = source.poll(10)
        assert records[0] == (0.0, 0.021)
        assert math.isnan(records[1][1])
        assert source.exhausted

    def test_burst_limit(self):
        stream = io.StringIO("".join(f"{i * 0.02},0.02\n" for i in range(6)))
        source = StreamSource(stream, name="test")
        assert len(source.poll(4)) == 4
        assert not source.exhausted

    def test_real_pipe_does_not_block_when_silent(self):
        import os

        read_fd, write_fd = os.pipe()
        try:
            with os.fdopen(read_fd, "r") as reader:
                source = StreamSource(reader, name="pipe")
                assert source.poll(4) == []  # select says nothing ready
                assert not source.exhausted
                os.write(write_fd, b"0.0,0.021\n")
                assert source.poll(4) == [(0.0, 0.021)]
        finally:
            os.close(write_fd)


class TestIngestLatencyStamping:
    """Ingest stamps feed the tracing layer's ``ingest`` stage: they come
    from the monotonic clock at admission, so they must stay ordered even
    when the *send times* in the feed are out of order or duplicated
    (reordered probes, replayed rows)."""

    @staticmethod
    def _drive(source, window=4):
        from repro.streaming.windows import SlidingWindowAssembler

        assembler = SlidingWindowAssembler(window=window, hop=window)
        emitted = []
        while not source.exhausted:
            for send_time, delay in source.poll(64):
                completed = assembler.push(send_time, delay)
                if completed is not None:
                    emitted.append(completed)
        return assembler, emitted

    def test_tail_source_out_of_order_send_times_stamp_monotone(
            self, tmp_path):
        from repro.obs.trace import enable_tracing

        csv = tmp_path / "obs.csv"
        # send_times go 3, 1, 2, 1 — thoroughly out of order.
        csv.write_text("3.0,0.021\n1.0,0.022\n2.0,0.023\n1.0,0.024\n")
        enable_tracing()
        assembler, emitted = self._drive(TailSource(csv))
        stamps = list(assembler._ingest_times)
        assert stamps == sorted(stamps)
        assert len(emitted) == 1
        trace = emitted[0].trace
        assert trace is not None
        assert trace.ingest_first <= trace.ingest_last <= trace.assembled_at

    def test_stream_source_duplicate_records_stamp_monotone(self):
        from repro.obs.trace import enable_tracing

        stream = io.StringIO("0.0,0.021\n" * 8)  # 8 identical rows
        enable_tracing()
        assembler, emitted = self._drive(StreamSource(stream, name="dup"),
                                         window=4)
        stamps = list(assembler._ingest_times)
        assert stamps == sorted(stamps)
        assert len(emitted) == 2
        # Both windows' traces are internally and mutually ordered.
        first, second = (w.trace for w in emitted)
        assert first.ingest_last <= second.ingest_first or \
            first.ingest_last <= second.ingest_last
        for trace in (first, second):
            assert trace.stages()["ingest"] >= 0.0

    def test_stamps_not_collected_when_tracing_off(self, tmp_path):
        csv = tmp_path / "obs.csv"
        csv.write_text("0.0,0.021\n1.0,0.022\n")
        assembler, _ = self._drive(TailSource(csv))
        assert list(assembler._ingest_times) == []
