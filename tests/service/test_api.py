"""Tests for the fleet service's HTTP control/verdict API."""

import json
import urllib.error
import urllib.request

import pytest

from repro import obs
from repro.service import FleetService, ServiceAPI

from tests.service.conftest import fast_config


@pytest.fixture
def served():
    service = FleetService(base_config=fast_config())
    api = ServiceAPI(service, port=0).start()
    yield service, api
    api.close()
    service.close()


def request(url, method="GET", body=None):
    data = None if body is None else json.dumps(body).encode()
    req = urllib.request.Request(url, data=data, method=method)
    if data is not None:
        req.add_header("Content-Type", "application/json")
    with urllib.request.urlopen(req, timeout=10) as response:
        return response.status, json.loads(response.read() or b"{}")


def error_of(url, method="GET", body=None):
    with pytest.raises(urllib.error.HTTPError) as excinfo:
        request(url, method=method, body=body)
    exc = excinfo.value
    return exc.code, json.loads(exc.read())


class TestPathsEndpoints:
    def test_register_list_deregister_roundtrip(self, served):
        service, api = served
        status, entry = request(f"{api.base_url}/paths", method="POST",
                                body={"id": "pA"})
        assert status == 201
        assert entry["generation"] == 1
        assert entry["status"] == "active"

        _, listing = request(f"{api.base_url}/paths")
        assert [p["path"] for p in listing["paths"]] == ["pA"]

        status, gone = request(f"{api.base_url}/paths/pA", method="DELETE")
        assert status == 200
        assert gone["discarded_windows"] == 0
        _, listing = request(f"{api.base_url}/paths")
        assert listing["paths"] == []

    def test_duplicate_registration_is_409(self, served):
        _, api = served
        request(f"{api.base_url}/paths", method="POST", body={"id": "pA"})
        code, payload = error_of(f"{api.base_url}/paths", method="POST",
                                 body={"id": "pA"})
        assert code == 409
        assert "already registered" in payload["error"]

    def test_missing_id_is_400(self, served):
        _, api = served
        code, payload = error_of(f"{api.base_url}/paths", method="POST",
                                 body={"config": {}})
        assert code == 400
        assert "id" in payload["error"]

    def test_bad_json_body_is_400(self, served):
        _, api = served
        req = urllib.request.Request(f"{api.base_url}/paths",
                                     data=b"not json{", method="POST")
        with pytest.raises(urllib.error.HTTPError) as excinfo:
            urllib.request.urlopen(req, timeout=10)
        assert excinfo.value.code == 400

    def test_bad_config_override_is_400(self, served):
        _, api = served
        code, payload = error_of(
            f"{api.base_url}/paths", method="POST",
            body={"id": "pA", "config": {"widnow": 900}})
        assert code == 400
        assert "unknown config override" in payload["error"]

    def test_unknown_source_kind_is_400(self, served):
        _, api = served
        code, payload = error_of(
            f"{api.base_url}/paths", method="POST",
            body={"id": "pA", "source": {"kind": "carrier-pigeon"}})
        assert code == 400
        assert "carrier-pigeon" in payload["error"]

    def test_delete_unknown_path_is_404(self, served):
        _, api = served
        code, _ = error_of(f"{api.base_url}/paths/ghost", method="DELETE")
        assert code == 404

    def test_pause_resume_over_http(self, served):
        service, api = served
        request(f"{api.base_url}/paths", method="POST", body={"id": "pA"})
        status, entry = request(f"{api.base_url}/paths/pA/pause",
                                method="POST")
        assert status == 200
        assert entry["status"] == "paused"
        assert service.ingest("pA", 0.0, 0.02) == "paused"
        _, entry = request(f"{api.base_url}/paths/pA/resume", method="POST")
        assert entry["status"] == "active"
        assert service.ingest("pA", 0.02, 0.02) is None

    def test_file_source_registration(self, served, tmp_path):
        service, api = served
        csv = tmp_path / "obs.csv"
        csv.write_text("send_time,delay\n0.0,0.021\n0.02,0.022\n")
        status, _ = request(
            f"{api.base_url}/paths", method="POST",
            body={"id": "pF", "source": {"kind": "file", "path": str(csv)}})
        assert status == 201
        service.step()
        assert service.registry.get("pF").n_records == 2

    def test_missing_source_file_is_400(self, served, tmp_path):
        _, api = served
        code, _ = error_of(
            f"{api.base_url}/paths", method="POST",
            body={"id": "pF",
                  "source": {"kind": "file",
                             "path": str(tmp_path / "ghost.csv")}})
        assert code == 400


class TestVerdictAndFleet:
    def test_demo_source_flows_to_verdicts_and_fleet(self, served):
        service, api = served
        status, _ = request(
            f"{api.base_url}/paths", method="POST",
            body={"id": "demo",
                  "source": {"kind": "demo", "n": 1800, "seed": 7}})
        assert status == 201
        service.run(exit_when_idle=True, interval=0.0)

        _, verdict = request(f"{api.base_url}/verdicts/demo")
        assert verdict["latest"]["window"] == 4
        assert set(verdict["latest"]) >= {"g_pmf", "d_star", "bound_seconds",
                                          "stable_verdict", "lag_ms"}
        assert len(verdict["recent"]) == 5

        _, fleet = request(f"{api.base_url}/fleet")
        assert fleet["paths"] == {"active": 1, "paused": 0}
        assert fleet["backlog"] == 0
        assert sum(fleet["verdicts"].values()) == 1
        assert fleet["windows"] == 5

    def test_verdict_unknown_path_is_404(self, served):
        _, api = served
        code, _ = error_of(f"{api.base_url}/verdicts/ghost")
        assert code == 404

    def test_fleet_works_before_any_cycle(self, served):
        _, api = served
        _, fleet = request(f"{api.base_url}/fleet")
        assert fleet["cycle"] == 0
        assert fleet["backlog"] == 0


class TestMetricsMount:
    def test_metrics_routes_served_alongside_api(self, served):
        _, api = served
        req = urllib.request.Request(f"{api.base_url}/metrics")
        with urllib.request.urlopen(req, timeout=10) as response:
            assert response.status == 200
        req = urllib.request.Request(f"{api.base_url}/healthz")
        with urllib.request.urlopen(req, timeout=10) as response:
            assert response.read() == b"ok\n"

    def test_http_requests_land_in_service_metrics(self):
        obs.enable(clear=True)
        try:
            service = FleetService(base_config=fast_config())
            api = ServiceAPI(service, port=0).start()
            try:
                request(f"{api.base_url}/paths", method="POST",
                        body={"id": "pA"})
                request(f"{api.base_url}/paths")
                error_of(f"{api.base_url}/verdicts/ghost")
            finally:
                api.close()
            counters = obs.registry().snapshot()["counters"]
            assert counters[("repro_service_http_requests_total",
                             (("code", "201"), ("method", "POST"),
                              ("route", "/paths")))] == 1
            assert counters[("repro_service_http_requests_total",
                             (("code", "200"), ("method", "GET"),
                              ("route", "/paths")))] == 1
            assert counters[("repro_service_http_requests_total",
                             (("code", "404"), ("method", "GET"),
                              ("route", "/verdicts/{id}")))] == 1
            histograms = obs.registry().snapshot()["histograms"]
            routes = {labels for (name, labels) in histograms
                      if name == "repro_service_http_seconds"}
            assert (("route", "/paths"),) in routes
        finally:
            obs.disable()


class TestConcurrentReadsDuringDrain:
    def test_fleet_reads_do_not_block_on_the_mutation_lock(self, served):
        """GET endpoints read the published cache: they answer while the
        service holds its mutation lock mid-drain."""
        import threading

        service, api = served
        acquired = threading.Event()
        release = threading.Event()

        def hold_lock():
            with service._lock:
                acquired.set()
                release.wait(timeout=10)

        holder = threading.Thread(target=hold_lock)
        holder.start()
        try:
            assert acquired.wait(timeout=5)
            status, fleet = request(f"{api.base_url}/fleet")
            assert status == 200
            status, listing = request(f"{api.base_url}/paths")
            assert status == 200
        finally:
            release.set()
            holder.join(timeout=5)
