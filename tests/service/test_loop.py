"""Tests for the FleetService loop: parity, admission, overload, events."""

import json

from repro import obs
from repro.experiments.streams import strong_dcl_stream
from repro.obs import schema
from repro.service import (BackpressurePolicy, FleetService, IterableSource,
                           QueueSource)
from repro.streaming.scheduler import MultiPathMonitor

from tests.service.conftest import event_keys, fast_config, payload_keys


def collecting_service(**kwargs):
    """A FleetService whose emitted payloads land in the returned list."""
    payloads = []
    kwargs.setdefault("base_config", fast_config())
    service = FleetService(emit_fn=payloads.append, **kwargs)
    return service, payloads


class TestParityWithOfflineMonitor:
    def test_verdict_streams_match_run_streams(self):
        """The service adds scheduling around the scheduler, never a
        different fit path: per-path verdict streams are byte-identical
        to a one-shot offline run over the same records."""
        streams = {f"p{i}": list(strong_dcl_stream(1800, seed=40 + i))
                   for i in range(2)}
        offline = MultiPathMonitor(fast_config(), drain_mode="fused")
        reference = event_keys(offline.run_streams(streams))

        service, payloads = collecting_service(drain_mode="fused")
        for path, records in streams.items():
            service.register(path, source=IterableSource(iter(records)))
        service.run(exit_when_idle=True, interval=0.0)
        got = payload_keys(payloads)
        for path in streams:
            assert [k for k in got if f'"path": "{path}"' in k] == \
                   [k for k in reference if f'"path": "{path}"' in k]
        assert len(got) == len(reference) > 0


class TestAdmission:
    def test_unregistered_records_drop(self):
        service, _ = collecting_service()
        assert service.ingest("ghost", 0.0, 0.02) == "unregistered"
        assert service.monitor.n_pending == 0

    def test_paused_path_drops_until_resume(self):
        service, _ = collecting_service()
        service.register("pA")
        service.pause("pA")
        assert service.ingest("pA", 0.0, 0.02) == "paused"
        service.resume("pA")
        assert service.ingest("pA", 0.02, 0.02) is None
        entry = service.registry.get("pA")
        assert entry.n_records == 1
        assert entry.n_dropped == 1

    def test_stale_generation_after_reregistration(self):
        service, _ = collecting_service()
        service.register("pA")
        service.deregister("pA")
        service.register("pA")  # generation 2
        assert service.ingest("pA", 0.0, 0.02, generation=1) == \
            "stale-generation"
        assert service.ingest("pA", 0.0, 0.02, generation=2) is None

    def test_exhausted_source_late_records_drop_after_reregister(self):
        """An old incarnation's queue keeps its generation binding: its
        late pushes drop instead of feeding the new incarnation."""
        service, _ = collecting_service()
        old_queue = QueueSource()
        service.register("pA", source=old_queue)
        service.step()
        service.deregister("pA")
        service.register("pA")
        service.attach_source("pA", QueueSource())
        # Records that were still in flight for generation 1:
        assert service.ingest("pA", 0.0, 0.02, generation=1) == \
            "stale-generation"

    def test_deregister_discards_pending_windows(self):
        service, _ = collecting_service()
        service.register("pA")
        for send_time, delay in strong_dcl_stream(1500, seed=41):
            service.ingest("pA", send_time, delay)
        assert service.monitor.n_pending > 0
        out = service.deregister("pA")
        assert out["discarded_windows"] > 0
        assert service.monitor.n_pending == 0


class TestLoop:
    def test_exit_when_idle_terminates_and_flushes(self):
        service, payloads = collecting_service()
        service.register(
            "pA", source=IterableSource(strong_dcl_stream(1500, seed=42)))
        cycles = service.run(exit_when_idle=True, interval=0.0)
        assert cycles >= 1
        assert service.monitor.n_pending == 0
        # 1500 records at hop 300: windows 0..3 via drains plus the
        # 1200..1500 tail flushed by finish().
        assert [p["window"] for p in payloads] == [0, 1, 2, 3]

    def test_max_cycles_bounds_the_run(self):
        service, _ = collecting_service()
        service.register(
            "pA", source=IterableSource(strong_dcl_stream(9000, seed=42)))
        assert service.run(max_cycles=3) == 3

    def test_stop_is_sticky_until_rerun(self):
        service, _ = collecting_service()
        service.stop()
        assert service.run(max_cycles=5) == 0

    def test_shed_under_overload_keeps_backlog_bounded(self):
        """2x-style overload: a burst far beyond the drain budget sheds
        down to the low watermark instead of growing without bound."""
        service, payloads = collecting_service(
            backpressure=BackpressurePolicy(mode="shed", high_watermark=6,
                                            low_watermark=2),
            burst=6000,
        )
        service.register(
            "pA", source=IterableSource(strong_dcl_stream(6000, seed=43)))
        summary = service.step()
        assert summary["shed"] > 0
        assert service.backpressure.n_shed_windows == summary["shed"]
        # Everything that survived the shed was drained this cycle.
        assert summary["backlog"] == 0
        assert summary["windows"] == 2
        # Shed windows are the oldest; survivors are the most recent.
        assert [p["window"] for p in payloads] == [17, 18]

    def test_coarsen_under_overload_then_restore(self):
        service, _ = collecting_service(
            backpressure=BackpressurePolicy(mode="coarsen",
                                            high_watermark=6,
                                            low_watermark=2),
            burst=6000,
        )
        service.register(
            "pA", source=IterableSource(strong_dcl_stream(12000, seed=43)))
        first = service.step()
        assert first["coarsened"]
        assert service.monitor.path_hops() == {"pA": 600}
        restored = False
        for _ in range(4):  # restore engages once the backlog clears
            if service.step()["restored"]:
                restored = True
                break
        assert restored
        assert service.monitor.path_hops() == {"pA": 300}


class TestSnapshots:
    def test_path_snapshot_tracks_backlog_and_latest(self):
        service, _ = collecting_service()
        service.register(
            "pA", source=IterableSource(strong_dcl_stream(1500, seed=44)))
        before = service.path_snapshot()
        assert before[0]["latest"] is None
        service.run(exit_when_idle=True, interval=0.0)
        after = service.path_snapshot()
        assert after[0]["latest"]["window"] == 3
        assert after[0]["backlog"] == 0

    def test_verdict_snapshot_carries_bounds_and_history(self):
        service, _ = collecting_service()
        service.register(
            "pA", source=IterableSource(strong_dcl_stream(1800, seed=44)))
        service.run(exit_when_idle=True, interval=0.0)
        snapshot = service.verdict_snapshot("pA")
        assert snapshot["path"] == "pA"
        latest = snapshot["latest"]
        # The verdict payload carries the paper quantities the API
        # promises: G pmf, Q_k tail bound, and window lag.
        assert set(latest) >= {"g_pmf", "d_star", "bound_seconds",
                               "stable_verdict", "lag_ms"}
        assert [p["window"] for p in snapshot["recent"]] == \
            list(range(len(snapshot["recent"])))
        assert service.verdict_snapshot("ghost") is None

    def test_fleet_snapshot_histogram_and_drain(self):
        service, _ = collecting_service(drain_mode="fused")
        for i in range(2):
            service.register(
                f"p{i}",
                source=IterableSource(strong_dcl_stream(1800, seed=45 + i)))
        service.run(exit_when_idle=True, interval=0.0)
        fleet = service.fleet_snapshot()
        assert fleet["paths"] == {"active": 2, "paused": 0}
        assert fleet["backlog"] == 0
        assert sum(fleet["verdicts"].values()) == 2
        assert fleet["last_drain"]["mode"] == "fused"
        assert fleet["backpressure"]["mode"] == "off"


class TestTelemetry:
    def test_events_and_metrics_are_schema_valid(self, tmp_path):
        events_path = tmp_path / "events.jsonl"
        obs.enable(events=str(events_path), clear=True)
        try:
            service, _ = collecting_service(
                backpressure=BackpressurePolicy(mode="shed",
                                                high_watermark=6,
                                                low_watermark=2),
                burst=6000,
            )
            service.register(
                "pA",
                source=IterableSource(strong_dcl_stream(6000, seed=46)))
            service.step()
            service.pause("pA")
            service.resume("pA")
            service.deregister("pA")
        finally:
            obs.disable()
        events = [json.loads(line)
                  for line in events_path.read_text().splitlines()]
        kinds = {event["kind"] for event in events}
        assert {"service.path", "service.round", "service.shed"} <= kinds
        for event in events:
            assert schema.validate_event(event) == [], event
        actions = [e["action"] for e in events
                   if e["kind"] == "service.path"]
        assert actions == ["register", "pause", "resume", "deregister"]

    def test_service_counters_and_gauges_update(self):
        obs.enable(clear=True)
        try:
            service, _ = collecting_service()
            service.register(
                "pA",
                source=IterableSource(strong_dcl_stream(1500, seed=47)))
            service.ingest("ghost", 0.0, 0.02)
            service.run(exit_when_idle=True, interval=0.0)
            registry = obs.registry()
            counters = {
                (name, labels): value
                for (name, labels), value in
                registry.snapshot()["counters"].items()
            }
            assert counters[("repro_service_records_total", ())] == 1500
            assert counters[("repro_service_records_dropped_total",
                             (("reason", "unregistered"),))] == 1
            assert counters[("repro_service_rounds_total", ())] >= 1
            assert counters[("repro_service_windows_total", ())] == 4
            gauges = registry.snapshot()["gauges"]
            assert gauges[("repro_service_backlog_windows", ())] == 0
            assert gauges[("repro_service_paths",
                           (("status", "active"),))] == 1
        finally:
            obs.disable()
