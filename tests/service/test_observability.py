"""The observability surfaces: /traces, /query, /slo, byte parity.

The tentpole guarantees: per-verdict stage breakdowns behind
``GET /traces/{id}``, queryable metric history behind ``GET /query``,
error-budget status behind ``GET /slo`` — and verdict streams that stay
byte-identical with tracing on or off.
"""

import json
import urllib.error
import urllib.request

import pytest

from repro import obs
from repro.obs.slo import SLOEvaluator, parse_slos
from repro.obs.trace import TraceStore, enable_tracing
from repro.obs.tsdb import TimeSeriesStore
from repro.service import FleetService, ServiceAPI

from tests.service.conftest import fast_config, payload_keys


def request(url):
    with urllib.request.urlopen(
            urllib.request.Request(url), timeout=10) as response:
        return response.status, json.loads(response.read() or b"{}")


def error_of(url):
    with pytest.raises(urllib.error.HTTPError) as excinfo:
        request(url)
    exc = excinfo.value
    return exc.code, json.loads(exc.read())


@pytest.fixture
def bare_api():
    """A service with none of the observability attachments."""
    service = FleetService(base_config=fast_config())
    api = ServiceAPI(service, port=0).start()
    yield service, api
    api.close()
    service.close()


@pytest.fixture
def observed_api():
    """A service with tracing, a TSDB, and SLOs all attached."""
    enable_tracing()
    slo_eval = SLOEvaluator(parse_slos(
        "verdict-freshness: p95 repro_record_to_verdict_seconds "
        "< 2s over 5m budget 5%"))
    service = FleetService(
        base_config=fast_config(),
        tsdb=TimeSeriesStore(interval=0.0001),
        trace_store=TraceStore(),
        slo=slo_eval,
    )
    api = ServiceAPI(service, port=0).start()
    yield service, api
    api.close()
    service.close()


def _run_demo(service, path="demo", n=1800, seed=7):
    from repro.service.api import build_source

    service.register(path, source=build_source(
        {"kind": "demo", "n": n, "seed": seed}))
    service.run(exit_when_idle=True, interval=0.0)


class TestRoutesWithoutAttachments:
    def test_traces_404_when_tracing_off(self, bare_api):
        _, api = bare_api
        code, payload = error_of(f"{api.base_url}/traces")
        assert code == 404
        assert "--trace" in payload["error"]
        code, _ = error_of(f"{api.base_url}/traces/any")
        assert code == 404

    def test_query_404_without_store(self, bare_api):
        _, api = bare_api
        code, payload = error_of(f"{api.base_url}/query?series=x")
        assert code == 404
        assert "time-series" in payload["error"]

    def test_slo_404_without_evaluator(self, bare_api):
        _, api = bare_api
        code, payload = error_of(f"{api.base_url}/slo")
        assert code == 404
        assert "--slo" in payload["error"]


class TestTracesEndpoint:
    def test_per_verdict_stage_breakdown(self, observed_api):
        service, api = observed_api
        _run_demo(service)
        status, payload = request(f"{api.base_url}/traces/demo")
        assert status == 200
        assert payload["path"] == "demo"
        traces = payload["traces"]
        assert len(traces) == 5  # one per published window
        for trace in traces:
            stages = trace["stages"]
            assert set(stages) >= {"ingest", "queue", "fit", "publish",
                                   "total"}
            assert all(v >= 0.0 for v in stages.values())
            assert trace["stamps"]["published_at"] is not None
        assert [t["window"] for t in traces] == [0, 1, 2, 3, 4]

    def test_fleet_slowest_exemplars(self, observed_api):
        service, api = observed_api
        _run_demo(service)
        _, payload = request(f"{api.base_url}/traces")
        assert payload["paths"] == ["demo"]
        slowest = payload["slowest"]
        assert slowest
        totals = [t["stages"]["total"] for t in slowest]
        assert totals == sorted(totals, reverse=True)

    def test_unknown_path_is_404(self, observed_api):
        _, api = observed_api
        code, _ = error_of(f"{api.base_url}/traces/ghost")
        assert code == 404

    def test_registered_but_untraced_path_is_empty_not_404(
            self, observed_api):
        service, api = observed_api
        service.register("quiet")
        status, payload = request(f"{api.base_url}/traces/quiet")
        assert status == 200
        assert payload["traces"] == []


class TestQueryEndpoint:
    def test_history_is_served_after_cycles(self, observed_api):
        service, api = observed_api
        obs.enable()
        _run_demo(service)
        _, names = request(f"{api.base_url}/query")
        assert "repro_service_backlog_windows" in names["series_names"]
        _, payload = request(
            f"{api.base_url}/query?series=repro_service_rounds_total")
        series = payload["series"]["repro_service_rounds_total"]
        assert len(series) >= 1
        assert series[-1][1] >= 1.0

    def test_family_query_includes_quantile_subseries(self, observed_api):
        service, api = observed_api
        obs.enable()
        _run_demo(service)
        _, payload = request(
            f"{api.base_url}/query?series=repro_record_to_verdict_seconds")
        keys = set(payload["series"])
        assert "repro_record_to_verdict_seconds:count" in keys
        assert "repro_record_to_verdict_seconds:p95" in keys

    def test_bad_since_is_400(self, observed_api):
        _, api = observed_api
        code, payload = error_of(f"{api.base_url}/query?series=x&since=nope")
        assert code == 400
        assert "since" in payload["error"]


class TestSLOEndpoint:
    def test_budget_status_rows(self, observed_api):
        service, api = observed_api
        obs.enable()
        _run_demo(service)
        _, payload = request(f"{api.base_url}/slo")
        (row,) = payload["slos"]
        assert row["slo"] == "verdict-freshness"
        assert "burn_fast" in row
        assert "budget_remaining" in row
        # Fast windows on a demo stream: verdicts land well under 2s.
        assert not row["breaching"]


class TestByteParity:
    """The load-bearing invariant: tracing must never change what the
    service publishes, only annotate it."""

    def _verdict_stream(self, traced: bool):
        if traced:
            enable_tracing()
        service = FleetService(
            base_config=fast_config(),
            trace_store=TraceStore() if traced else None,
        )
        try:
            _run_demo(service)
            snapshot = service.verdict_snapshot("demo")
            return payload_keys(snapshot["recent"])
        finally:
            service.close()

    def test_verdict_streams_identical_with_tracing_on_and_off(self):
        plain = self._verdict_stream(traced=False)
        from repro.obs.trace import disable_tracing

        disable_tracing()
        traced = self._verdict_stream(traced=True)
        assert len(plain) == 5
        assert plain == traced

    def test_verdict_payloads_never_leak_trace_keys(self):
        enable_tracing()
        service = FleetService(base_config=fast_config(),
                               trace_store=TraceStore())
        try:
            _run_demo(service)
            snapshot = service.verdict_snapshot("demo")
            for payload in snapshot["recent"]:
                assert "trace" not in payload
                assert "stages" not in payload
        finally:
            service.close()
