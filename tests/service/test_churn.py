"""Registry churn never perturbs surviving paths' verdict streams.

The ISSUE-level contract: paths registered and deregistered mid-run
(including re-registration of the same id) must leave every *surviving*
path's verdict stream byte-identical to a churn-free run — in both
drain modes.  Warm-start chaining, hysteresis and window assembly are
per-path state, so churn elsewhere in the fleet must be invisible.
"""

import pytest

from repro.experiments.streams import strong_dcl_stream
from repro.service import FleetService, IterableSource
from repro.streaming.scheduler import MultiPathMonitor

from tests.service.conftest import event_keys, fast_config, payload_keys

SURVIVORS = ("pA", "pB")


def survivor_streams():
    return {path: list(strong_dcl_stream(2100, seed=50 + i))
            for i, path in enumerate(SURVIVORS)}


def reference_events(drain_mode):
    """Per-path verdict streams of a churn-free offline run."""
    monitor = MultiPathMonitor(fast_config(), drain_mode=drain_mode)
    keys = event_keys(monitor.run_streams(survivor_streams()))
    return {path: [k for k in keys if f'"path": "{path}"' in k]
            for path in SURVIVORS}


@pytest.mark.parametrize("drain_mode", ["fused", "pool"])
def test_churn_leaves_survivors_byte_identical(drain_mode):
    payloads = []
    service = FleetService(base_config=fast_config(), drain_mode=drain_mode,
                           emit_fn=payloads.append)
    for path, records in survivor_streams().items():
        service.register(path, source=IterableSource(iter(records)))

    # Churn while the survivors are mid-stream: a transient path comes
    # and goes twice (second incarnation = generation 2), with overrides
    # that keep it in the same fused group and pending windows at every
    # deregistration.
    service.step()
    service.register(
        "transient",
        source=IterableSource(strong_dcl_stream(1500, seed=99)))
    service.step()
    assert service.deregister("transient")["generation"] == 1
    service.step()
    service.register(
        "transient", overrides={"confirm": 3},
        source=IterableSource(strong_dcl_stream(2400, seed=98)))
    service.step()
    service.deregister("transient")
    service.run(exit_when_idle=True, interval=0.0)

    got = payload_keys(payloads)
    reference = reference_events(drain_mode)
    for path in SURVIVORS:
        mine = [k for k in got if f'"path": "{path}"' in k]
        assert mine == reference[path], f"{path} diverged under churn"
        assert len(mine) > 0


@pytest.mark.parametrize("drain_mode", ["fused", "pool"])
def test_per_path_config_overrides_do_not_leak(drain_mode):
    """A path running overridden hysteresis/window parameters alongside
    default paths changes only its own stream."""
    payloads = []
    service = FleetService(base_config=fast_config(), drain_mode=drain_mode,
                           emit_fn=payloads.append)
    streams = survivor_streams()
    for path, records in streams.items():
        service.register(path, source=IterableSource(iter(records)))
    # Same (model, n_hidden, n_symbols): fuses with the others, but its
    # own hop/hysteresis.
    service.register(
        "custom", overrides={"window": 800, "confirm": 1, "memory": 2},
        source=IterableSource(strong_dcl_stream(2400, seed=97)))
    service.run(exit_when_idle=True, interval=0.0)

    got = payload_keys(payloads)
    reference = reference_events(drain_mode)
    for path in SURVIVORS:
        assert [k for k in got if f'"path": "{path}"' in k] == \
            reference[path]
    custom = [k for k in got if '"path": "custom"' in k]
    # 2400 probes, window 800, hop 400 -> windows at 800..2400.
    assert len(custom) == 5
