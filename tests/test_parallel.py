"""Tests of the shared parallel-execution layer (``repro.parallel``)."""

import itertools
import os

import numpy as np
import pytest

from repro.parallel import (
    STREAM_BOOTSTRAP,
    STREAM_RESTART,
    STREAM_SELECTION,
    STREAM_SWEEP,
    parallel_map,
    resolve_n_jobs,
    restart_rng,
    seed_sequence,
    task_rng,
    task_seed,
)


def _square(x):
    return x * x


def _first_draw(args):
    base_seed, key = args
    return float(task_rng(base_seed, *key).random())


class TestResolveNJobs:
    def test_serial_values(self):
        assert resolve_n_jobs(None) == 1
        assert resolve_n_jobs(1) == 1

    def test_all_cpus(self):
        expected = os.cpu_count() or 1
        assert resolve_n_jobs(-1) == expected
        assert resolve_n_jobs(0) == expected

    def test_explicit_count_taken_literally(self):
        assert resolve_n_jobs(3) == 3

    def test_rejects_nonsense(self):
        with pytest.raises(ValueError):
            resolve_n_jobs(-2)


class TestParallelMap:
    def test_serial_preserves_order(self):
        assert parallel_map(_square, [3, 1, 2], n_jobs=1) == [9, 1, 4]

    def test_parallel_preserves_order(self):
        items = list(range(23))
        assert parallel_map(_square, items, n_jobs=2) == [i * i for i in items]

    def test_parallel_matches_serial(self):
        items = list(range(17))
        serial = parallel_map(_square, items, n_jobs=1)
        parallel = parallel_map(_square, items, n_jobs=3)
        assert serial == parallel

    def test_explicit_chunksize(self):
        items = list(range(10))
        out = parallel_map(_square, items, n_jobs=2, chunksize=3)
        assert out == [i * i for i in items]

    def test_empty_items(self):
        assert parallel_map(_square, [], n_jobs=4) == []

    def test_single_item_runs_in_process(self):
        # No pool should be involved: unpicklable closures must work.
        acc = []
        assert parallel_map(lambda x: acc.append(x) or x, [5], n_jobs=4) == [5]
        assert acc == [5]


class TestTaskSeeding:
    def test_deterministic(self):
        assert task_seed(42, STREAM_RESTART, 3) == task_seed(42, STREAM_RESTART, 3)
        a = task_rng(42, STREAM_RESTART, 3).random(4)
        b = task_rng(42, STREAM_RESTART, 3).random(4)
        assert np.array_equal(a, b)

    def test_no_collisions_across_streams_and_indices(self):
        """The old ``seed + index`` convention collided across layers
        (restart 3 of seed 10 was restart 0 of seed 13); the spawn-key
        scheme must keep every (seed, stream, index) cell distinct."""
        streams = (STREAM_RESTART, STREAM_BOOTSTRAP, STREAM_SWEEP,
                   STREAM_SELECTION)
        seeds = set()
        for base, stream, index in itertools.product(
                range(4), streams, range(8)):
            seeds.add(task_seed(base, stream, index))
        assert len(seeds) == 4 * len(streams) * 8

    def test_restart_replicate_grid_distinct_draws(self):
        """Restarts x replicates must see distinct RNG streams even when
        base seeds are consecutive (the bootstrap uses seed + attempt)."""
        draws = [
            _first_draw((base, (STREAM_RESTART, restart)))
            for base in range(6)      # consecutive replicate seeds
            for restart in range(1, 5)
        ]
        assert len(set(draws)) == len(draws)

    def test_spawn_key_tuple_roundtrip(self):
        ss = seed_sequence(7, 2, 5)
        assert ss.entropy == 7
        assert ss.spawn_key == (2, 5)


class TestRestartRng:
    def test_restart_zero_is_legacy_stream(self):
        """Restart 0 must be bit-identical to ``default_rng(seed)`` so
        single-restart fits reproduce earlier releases exactly."""
        a = restart_rng(123, 0).random(8)
        b = np.random.default_rng(123).random(8)
        assert np.array_equal(a, b)

    def test_later_restarts_use_spawned_streams(self):
        spawned = restart_rng(123, 1).random(8)
        legacy_plus_one = np.random.default_rng(124).random(8)
        assert not np.array_equal(spawned, legacy_plus_one)

    def test_restarts_distinct(self):
        draws = {float(restart_rng(0, r).random()) for r in range(10)}
        assert len(draws) == 10

    def test_consistent_in_workers(self):
        """The same (seed, key) must yield the same stream no matter
        which process materialises it."""
        args = [(11, (STREAM_RESTART, r)) for r in range(4)]
        serial = parallel_map(_first_draw, args, n_jobs=1)
        parallel = parallel_map(_first_draw, args, n_jobs=2)
        assert serial == parallel
