"""Unit tests for nested span timing."""

import io
import json

from repro import obs
from repro.obs.schema import validate_event


def stream_events(stream):
    return [json.loads(line) for line in stream.getvalue().splitlines()]


class TestDisabled:
    def test_yields_none_and_records_nothing(self):
        with obs.span("em.fit", model="mmhd") as span_id:
            assert span_id is None
            assert obs.current_span_id() is None
        assert obs.registry().histogram_count(obs.SPAN_SECONDS,
                                              name="em.fit") == 0


class TestEnabled:
    def test_span_event_and_histogram(self):
        stream = io.StringIO()
        obs.enable(events=stream)
        with obs.span("em.fit", model="mmhd", n_restarts=3) as span_id:
            assert span_id is not None
        (event,) = stream_events(stream)
        assert validate_event(event) == []
        assert event["name"] == "em.fit"
        assert event["span"] == span_id
        assert event["parent"] is None
        assert event["dur_ms"] >= 0.0
        assert event["model"] == "mmhd"
        assert event["n_restarts"] == 3
        assert obs.registry().histogram_count(obs.SPAN_SECONDS,
                                              name="em.fit") == 1

    def test_nesting_links_parent_ids(self):
        stream = io.StringIO()
        obs.enable(events=stream)
        with obs.span("outer") as outer_id:
            assert obs.current_span_id() == outer_id
            with obs.span("inner") as inner_id:
                assert obs.current_span_id() == inner_id
        assert obs.current_span_id() is None
        inner, outer = stream_events(stream)  # inner closes first
        assert inner["name"] == "inner"
        assert inner["parent"] == outer_id
        assert outer["name"] == "outer"
        assert outer["parent"] is None
        assert inner_id != outer_id

    def test_stack_unwinds_on_exception(self):
        obs.enable()
        try:
            with obs.span("fails"):
                raise RuntimeError("boom")
        except RuntimeError:
            pass
        assert obs.current_span_id() is None
        # The failed span still recorded its duration.
        assert obs.registry().histogram_count(obs.SPAN_SECONDS,
                                              name="fails") == 1

    def test_span_ids_are_unique_and_pid_scoped(self):
        import os

        obs.enable()
        ids = set()
        for _ in range(5):
            with obs.span("x") as span_id:
                ids.add(span_id)
        assert len(ids) == 5
        assert all(i.startswith(f"{os.getpid():x}-") for i in ids)
