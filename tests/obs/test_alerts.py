"""Tests for the declarative alert rules engine."""

import io
import json

import pytest

from repro import obs
from repro.obs.alerts import (
    DEFAULT_RULES,
    AlertEngine,
    AlertRule,
    parse_rules,
)
from repro.obs.metrics import MetricsRegistry


class TestParse:
    def test_full_syntax(self):
        (rule,) = parse_rules(
            "collapse: rate repro_streaming_fallbacks_total"
            "{reason=zero-likelihood} > 0.5 for 3 fatal"
        )
        assert rule.name == "collapse"
        assert rule.mode == "rate"
        assert rule.metric == "repro_streaming_fallbacks_total"
        assert rule.labels == {"reason": "zero-likelihood"}
        assert rule.op == ">"
        assert rule.threshold == 0.5
        assert rule.for_count == 3
        assert rule.severity == "fatal"

    def test_defaults_and_comments(self):
        rules = parse_rules(
            "# a comment\n"
            "\n"
            "backlog: repro_pending_windows >= 10\n"
        )
        (rule,) = rules
        assert rule.mode == "value"
        assert rule.labels == {}
        assert rule.for_count == 1
        assert rule.severity == "warn"
        assert rule.op == ">="

    def test_bad_line_reports_line_number(self):
        with pytest.raises(ValueError, match="line 2"):
            parse_rules("ok: repro_x_total > 1\nnot a rule at all\n")

    def test_bad_labels_rejected(self):
        with pytest.raises(ValueError, match="label"):
            parse_rules("r: repro_x_total{oops} > 1")

    def test_duplicate_names_rejected(self):
        with pytest.raises(ValueError, match="duplicate"):
            parse_rules("a: repro_x_total > 1\na: repro_x_total > 2\n")

    def test_default_rules_parse(self):
        rules = parse_rules(DEFAULT_RULES)
        names = {rule.name for rule in rules}
        assert "likelihood-collapse-burst" in names
        assert "watchdog-stall" in names
        assert any(rule.severity == "fatal" for rule in rules)

    def test_describe_round_trips(self):
        (rule,) = parse_rules(
            "r: rate repro_x_total{a=b} > 0.5 for 2 fatal")
        (again,) = parse_rules(rule.describe())
        assert again.name == rule.name and again.mode == rule.mode
        assert again.labels == rule.labels
        assert again.for_count == rule.for_count

    def test_rule_validation(self):
        with pytest.raises(ValueError):
            AlertRule("r", "m", "!=", 1.0)
        with pytest.raises(ValueError):
            AlertRule("r", "m", ">", 1.0, severity="nope")
        with pytest.raises(ValueError):
            AlertRule("r", "m", ">", 1.0, for_count=0)
        with pytest.raises(ValueError):
            AlertRule("r", "m", ">", 1.0, mode="banana")


def engine_for(text, registry):
    return AlertEngine(parse_rules(text), registry=registry)


class TestEvaluate:
    def test_value_rule_fires_once_and_emits_event(self):
        sink = io.StringIO()
        obs.enable(events=sink, clear=True)
        registry = obs.registry()
        engine = engine_for("stalls: repro_watchdog_stalls_total > 0 fatal",
                            registry)
        assert engine.evaluate(now=0.0) == []  # metric absent: no breach
        registry.inc("repro_watchdog_stalls_total")
        (fired,) = engine.evaluate(now=1.0)
        assert fired["event"] == "fired" and fired["severity"] == "fatal"
        assert engine.fatal_fired
        assert engine.active_alerts() == ["stalls"]
        assert engine.evaluate(now=2.0) == []  # still breached: no refire

        events = [json.loads(line) for line in sink.getvalue().splitlines()]
        (alert,) = [e for e in events if e["kind"] == "alert.fired"]
        assert alert["rule"] == "stalls"
        assert alert["value"] == 1.0 and alert["threshold"] == 0.0
        key = ("repro_alerts_fired_total",
               (("rule", "stalls"), ("severity", "fatal")))
        assert registry.snapshot()["counters"][key] == 1.0

    def test_gauge_rule_resolves_when_value_drops(self):
        sink = io.StringIO()
        obs.enable(events=sink, clear=True)
        registry = obs.registry()
        engine = engine_for("backlog: repro_pending_windows >= 4", registry)
        registry.set_gauge("repro_pending_windows", 9.0)
        (fired,) = engine.evaluate(now=0.0)
        assert fired["event"] == "fired"
        registry.set_gauge("repro_pending_windows", 1.0)
        (resolved,) = engine.evaluate(now=1.0)
        assert resolved["event"] == "resolved"
        assert not engine.active_alerts()
        kinds = [json.loads(line)["kind"]
                 for line in sink.getvalue().splitlines()]
        assert kinds == ["alert.fired", "alert.resolved"]

    def test_for_count_needs_consecutive_breaches(self):
        registry = MetricsRegistry()
        engine = engine_for("r: repro_pending_windows > 0 for 3", registry)
        registry.set_gauge("repro_pending_windows", 5.0)
        assert engine.evaluate(now=0.0) == []
        assert engine.evaluate(now=1.0) == []
        registry.set_gauge("repro_pending_windows", 0.0)
        assert engine.evaluate(now=2.0) == []  # streak broken
        registry.set_gauge("repro_pending_windows", 5.0)
        assert engine.evaluate(now=3.0) == []
        assert engine.evaluate(now=4.0) == []
        (fired,) = engine.evaluate(now=5.0)
        assert fired["event"] == "fired"

    def test_label_subset_sums_matching_counters(self):
        registry = MetricsRegistry()
        engine = engine_for("all: repro_streaming_fallbacks_total > 2",
                            registry)
        registry.inc("repro_streaming_fallbacks_total", 2.0,
                     reason="zero-likelihood")
        registry.inc("repro_streaming_fallbacks_total", 2.0,
                     reason="non-monotone")
        (fired,) = engine.evaluate(now=0.0)
        assert fired["value"] == 4.0

    def test_rate_rule_uses_baseline_then_fires_on_burst(self):
        registry = MetricsRegistry()
        engine = engine_for(
            "burst: rate repro_streaming_fallbacks_total"
            "{reason=zero-likelihood} > 0.3 fatal",
            registry,
        )
        registry.inc("repro_streaming_fallbacks_total", 1.0,
                     reason="zero-likelihood")
        # First evaluation only establishes the baseline — never fires.
        assert engine.evaluate(now=0.0) == []
        # +1 over 10s = 0.1/s: below threshold.
        registry.inc("repro_streaming_fallbacks_total", 1.0,
                     reason="zero-likelihood")
        assert engine.evaluate(now=10.0) == []
        # +8 over 10s = 0.8/s: burst.
        registry.inc("repro_streaming_fallbacks_total", 8.0,
                     reason="zero-likelihood")
        (fired,) = engine.evaluate(now=20.0)
        assert fired["event"] == "fired"
        assert fired["value"] == pytest.approx(0.8)
        assert engine.fatal_fired

    def test_injected_likelihood_collapse_burst_fires_default_rule(self):
        """The acceptance scenario: a warm-start collapse burst (cold
        refits with fallback_reason=zero-likelihood) trips the built-in
        fatal rule and lands alert.fired in the telemetry JSONL."""
        sink = io.StringIO()
        obs.enable(events=sink, clear=True)
        engine = AlertEngine(parse_rules(DEFAULT_RULES))
        engine.evaluate(now=0.0)
        # Each drain interval sees several collapse fallbacks — the same
        # counter repro.streaming.online_em bumps on a zero-likelihood
        # warm fit.  The rule needs two consecutive breaching intervals
        # ("for 2") on top of the rate baseline, hence three bursts.
        for now in (10.0, 20.0, 30.0):
            obs.inc("repro_streaming_fallbacks_total", 6.0,
                    reason="zero-likelihood")
            engine.evaluate(now=now)
        assert engine.fatal_fired
        events = [json.loads(line) for line in sink.getvalue().splitlines()]
        fired = [e for e in events if e["kind"] == "alert.fired"]
        assert any(e["rule"] == "likelihood-collapse-burst" for e in fired)

    def test_histogram_rules_use_observation_count(self):
        registry = MetricsRegistry()
        engine = engine_for("obs: repro_window_lag_seconds > 2", registry)
        for _ in range(3):
            registry.observe("repro_window_lag_seconds", 0.5)
        (fired,) = engine.evaluate(now=0.0)
        assert fired["value"] == 3.0
