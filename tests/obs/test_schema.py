"""Tests for the telemetry catalog: validation and preregistration."""

from repro.obs import schema
from repro.obs.metrics import MetricsRegistry


def minimal_event(kind):
    _, required = schema.EVENT_KINDS[kind]
    event = {"ts": 1.0, "wall": 2.0, "pid": 3, "kind": kind}
    event.update({field: None for field in required})
    return event


class TestValidateEvent:
    def test_every_cataloged_kind_has_a_valid_minimal_event(self):
        for kind in schema.EVENT_KINDS:
            assert schema.validate_event(minimal_event(kind)) == []

    def test_missing_envelope_field(self):
        event = minimal_event("span")
        del event["pid"]
        assert schema.validate_event(event) == ["missing envelope field 'pid'"]

    def test_unknown_kind(self):
        problems = schema.validate_event(
            {"ts": 1.0, "wall": 2.0, "pid": 3, "kind": "mystery"}
        )
        assert problems == ["unknown kind 'mystery'"]

    def test_missing_payload_field(self):
        event = minimal_event("streaming.fit")
        del event["fallback_reason"]
        assert schema.validate_event(event) == [
            "streaming.fit: missing field 'fallback_reason'"
        ]


class TestCatalogConsistency:
    def test_metric_names_follow_prometheus_conventions(self):
        for name, kind, _labels, help_text in schema.METRICS:
            assert name.startswith("repro_")
            assert kind in ("counter", "gauge", "histogram")
            assert help_text.endswith(".")
            if kind == "counter":
                assert name.endswith("_total"), name
            if kind == "histogram":
                # Unit suffix: seconds for timings, ratio for
                # dimensionless fractions (batch occupancy).
                assert name.endswith(("_seconds", "_ratio")), name

    def test_monitor_series_reference_cataloged_families(self):
        cataloged = {name: labels for name, _, labels, _ in schema.METRICS}
        for name, label_sets in schema.MONITOR_SERIES:
            assert name in cataloged
            for labels in label_sets:
                assert set(labels) == set(cataloged[name])


class TestPreregister:
    def test_creates_zero_valued_monitor_series(self):
        registry = MetricsRegistry()
        schema.preregister(registry)
        assert registry.counter_value(
            "repro_streaming_fallbacks_total", reason="non-monotone") == 0.0
        assert registry.counter_value(
            "repro_window_verdicts_total", verdict="strong") == 0.0
        families = registry.family_names()
        for name, _ in schema.MONITOR_SERIES:
            assert name in families

    def test_scrape_sees_families_before_first_increment(self):
        registry = MetricsRegistry()
        schema.preregister(registry)
        text = registry.to_prometheus()
        assert 'repro_streaming_fallbacks_total{reason="zero-likelihood"} 0' \
            in text
        assert "# HELP repro_windows_total" in text
        assert "# TYPE repro_window_verdicts_total counter" in text

    def test_preregister_is_idempotent(self):
        registry = MetricsRegistry()
        schema.preregister(registry)
        registry.inc("repro_windows_total", 3.0)
        schema.preregister(registry)  # inc(0) must not reset anything
        assert registry.counter_value("repro_windows_total") == 3.0
