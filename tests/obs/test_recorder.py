"""Tests for the flight recorder, crash dumps, and the stall watchdog."""

import io
import json
import os
import signal
import subprocess
import sys
import time
from pathlib import Path

import pytest

from repro import obs
from repro.obs.recorder import FlightRecorder, Watchdog


class TestFlightRecorder:
    def test_ring_is_bounded(self):
        recorder = FlightRecorder(capacity=3)
        for i in range(7):
            recorder.record({"kind": "span", "i": i})
        assert [e["i"] for e in recorder.tail()] == [4, 5, 6]
        assert [e["i"] for e in recorder.tail(2)] == [5, 6]

    def test_capacity_validated(self):
        with pytest.raises(ValueError):
            FlightRecorder(capacity=0)

    def test_tap_records_events_even_without_a_sink(self):
        obs.enable(events=None, clear=True)  # metrics-only telemetry
        recorder = FlightRecorder().attach()
        try:
            obs.emit("span", name="x", span="1-1", parent=None, dur_ms=1.0)
            obs.emit("window", path="p0", window=0, status="ok")
        finally:
            recorder.detach()
        kinds = [e["kind"] for e in recorder.tail()]
        assert kinds == ["span", "window"]
        # detached: further events no longer land
        obs.emit("span", name="y", span="1-2", parent=None, dur_ms=1.0)
        assert len(recorder.tail()) == 2

    def test_dump_contains_events_and_thread_stacks(self, tmp_path):
        recorder = FlightRecorder()
        recorder.record({"kind": "span", "name": "em.fit"})
        path = recorder.dump(tmp_path / "sub" / "dump.json",
                             reason="unit test", extra={"note": 7})
        payload = json.loads(path.read_text())
        assert payload["reason"] == "unit test"
        assert payload["pid"] == os.getpid()
        assert payload["note"] == 7
        assert payload["n_events"] == 1
        assert payload["events"][0]["name"] == "em.fit"
        assert payload["threads"]  # at least the test runner's main thread
        assert any("test_recorder" in "".join(stack)
                   for stack in payload["threads"].values())

    def test_install_uninstall_restores_dispositions(self, tmp_path):
        previous = signal.getsignal(signal.SIGTERM)
        recorder = FlightRecorder()
        recorder.install_signal_dumps(tmp_path, signals=(signal.SIGTERM,),
                                      enable_faulthandler=False)
        try:
            assert signal.getsignal(signal.SIGTERM) is not previous
        finally:
            recorder.uninstall_signal_dumps()
        assert signal.getsignal(signal.SIGTERM) is previous


class TestWatchdog:
    def test_stall_fires_once_and_rearms_on_beat(self, tmp_path):
        sink = io.StringIO()
        obs.enable(events=sink, clear=True)
        recorder = FlightRecorder()
        for i in range(5):
            recorder.record({"kind": "span", "i": i})
        watchdog = Watchdog(timeout=5.0, recorder=recorder, ring_tail=2,
                            dump_dir=tmp_path)
        watchdog._last_beat = 100.0

        assert not watchdog.check(now=104.0)  # still within timeout
        assert watchdog.check(now=106.0)      # stall fires
        assert not watchdog.check(now=107.0)  # same episode: no refire
        watchdog.beat()
        watchdog._last_beat = 200.0
        assert watchdog.check(now=300.0)      # new episode after re-arm
        assert watchdog.n_stalls == 2

        events = [json.loads(line) for line in sink.getvalue().splitlines()]
        stalls = [e for e in events if e["kind"] == "watchdog.stall"]
        assert len(stalls) == 2
        assert stalls[0]["timeout"] == 5.0
        assert stalls[0]["idle_seconds"] == 6.0
        assert [e["i"] for e in stalls[0]["ring"]] == [3, 4]
        key = ("repro_watchdog_stalls_total", ())
        assert obs.registry().snapshot()["counters"][key] == 2.0
        dumps = sorted(tmp_path.glob("stall-*.json"))
        assert len(dumps) == 2
        assert json.loads(dumps[0].read_text())["timeout"] == 5.0

    def test_on_stall_callback_and_validation(self):
        with pytest.raises(ValueError):
            Watchdog(timeout=0)
        seen = []
        watchdog = Watchdog(timeout=1.0, on_stall=seen.append)
        watchdog._last_beat = 0.0
        watchdog.check(now=2.5)
        assert seen == [2.5]

    def test_heartbeat_feeds_started_watchdogs(self):
        obs.enable(events=None, clear=True)
        watchdog = Watchdog(timeout=60.0, poll=10.0).start()
        try:
            watchdog._last_beat = 0.0
            obs.heartbeat()
            assert watchdog._last_beat > 0.0
        finally:
            watchdog.stop()

    def test_context_manager_starts_and_stops(self):
        with Watchdog(timeout=60.0, poll=10.0) as watchdog:
            assert watchdog._thread is not None
        assert watchdog._thread is None


class TestSignalDumpEndToEnd:
    def test_killed_monitor_leaves_a_crash_dump_with_ring_tail(self,
                                                               tmp_path):
        """SIGTERM a live monitor; it must write crash-<pid>.json carrying
        the recent event ring before dying with the signal's exit code."""
        dump_dir = tmp_path / "dumps"
        events_path = tmp_path / "telemetry.jsonl"
        proc = subprocess.Popen(
            [sys.executable, "-m", "repro", "monitor",
             "--demo", "200000", "--window", "600", "--hop", "300",
             "--hidden", "1", "--no-stationarity-gate",
             "--flight-recorder", str(dump_dir),
             "--telemetry", str(events_path)],
            stdout=subprocess.DEVNULL, stderr=subprocess.DEVNULL,
            env={**os.environ,
                 "PYTHONPATH": str(Path(__file__).parents[2] / "src")},
        )
        try:
            deadline = time.monotonic() + 60
            # Wait until the monitor has demonstrably produced telemetry,
            # so the ring is non-empty when the signal lands.
            while time.monotonic() < deadline:
                if events_path.exists() and events_path.stat().st_size > 0:
                    break
                if proc.poll() is not None:
                    pytest.fail(f"monitor exited early: {proc.returncode}")
                time.sleep(0.2)
            else:
                pytest.fail("monitor produced no telemetry within 60s")
            proc.send_signal(signal.SIGTERM)
            returncode = proc.wait(timeout=60)
        finally:
            if proc.poll() is None:
                proc.kill()
                proc.wait(timeout=30)
        assert returncode == -signal.SIGTERM
        (dump,) = dump_dir.glob("crash-*.json")
        payload = json.loads(dump.read_text())
        assert payload["reason"] == "signal SIGTERM"
        assert payload["n_events"] > 0
        assert {"ts", "kind"} <= set(payload["events"][-1])
        assert payload["threads"]
