"""Model-health scoring: detectors, roll-up, retention, confidence."""

import numpy as np
import pytest

from repro import obs
from repro.models.diagnostics import WindowDiagnostics
from repro.obs.health import (ChiSquareDrift, CusumDetector, HealthConfig,
                              HealthReport, HealthStore, PageHinkleyDetector,
                              PathHealth, _ramp, disable_health,
                              enable_health, is_health_enabled,
                              verdict_confidence)
from repro.obs.schema import validate_event


def _good_diagnostics(mean_loglik=-0.8, emission_z=0.3, dwell_gap=0.5,
                      loss_rate_gap=0.1, below_bound_mass=0.0,
                      counts=None, seed=None):
    if counts is None:
        counts = np.array([120.0, 60.0, 30.0, 15.0])
        if seed is not None:
            rng = np.random.default_rng(seed)
            counts = counts + rng.integers(0, 4, size=counts.size)
    return WindowDiagnostics(
        True, n_obs=300, n_losses=15, mean_loglik=mean_loglik,
        emission_z=emission_z, counts=np.asarray(counts, dtype=float),
        expected_counts=np.asarray(counts, dtype=float),
        dwell_gap=dwell_gap, n_runs=40, loss_rate_gap=loss_rate_gap,
        below_bound_mass=below_bound_mass, beta0=0.06,
    )


class TestHealthSwitch:
    def test_flag_round_trip(self):
        assert not is_health_enabled()
        enable_health()
        assert is_health_enabled()
        disable_health()
        assert not is_health_enabled()

    def test_obs_config_carries_the_flag(self):
        enable_health()
        config = obs.current_config()
        assert config["model_health"] is True
        disable_health()
        obs.apply_config(config)
        assert is_health_enabled()

    def test_disable_clears_fleet_state(self):
        enable_health()
        obs.enable()
        report = PathHealth().update(_good_diagnostics())
        report.finalize("p0", 0)
        assert obs.registry().gauge_value("repro_model_health_min") is not None
        disable_health()
        enable_health()
        report = PathHealth().update(_good_diagnostics())
        report.finalize("p1", 0)
        # p0 no longer drags the fleet minimum after the off/on cycle.
        snap = obs.registry().snapshot()
        gauge_paths = [dict(lbls).get("path")
                       for (name, lbls) in snap["gauges"]
                       if name == "repro_model_health"]
        assert "p1" in gauge_paths


class TestRamp:
    def test_below_soft_is_one(self):
        assert _ramp(0.1, 1.0, 2.0, 0.5) == 1.0

    def test_above_hard_is_floor(self):
        assert _ramp(5.0, 1.0, 2.0, 0.5) == 0.5

    def test_linear_in_between(self):
        assert _ramp(1.5, 1.0, 2.0, 0.5) == pytest.approx(0.75)


class TestCusumDetector:
    def test_no_alarm_on_stationary_input(self):
        rng = np.random.default_rng(7)
        detector = CusumDetector()
        fired = [detector.update(x) for x in rng.normal(size=500)]
        assert not any(fired)
        assert detector.n_alarms == 0

    def test_level_shift_detected_within_a_few_windows(self):
        rng = np.random.default_rng(3)
        detector = CusumDetector()
        for x in rng.normal(size=60):
            assert not detector.update(x)
        shifted = rng.normal(loc=3.0, size=30)
        delays = [i for i, x in enumerate(shifted) if detector.update(x)]
        assert delays and delays[0] <= 10

    def test_alarm_rebaselines_to_the_new_regime(self):
        rng = np.random.default_rng(11)
        detector = CusumDetector()
        for x in rng.normal(size=60):
            detector.update(x)
        while not detector.update(float(rng.normal(loc=4.0))):
            pass
        assert detector.baseline.n == 0  # warming up again
        fired = [detector.update(x)
                 for x in rng.normal(loc=4.0, size=100)]
        assert not any(fired)  # the shifted level is the new normal

    def test_no_alarm_during_warmup(self):
        detector = CusumDetector(warmup=8)
        assert not any(detector.update(x) for x in [0.0, 100.0, -100.0, 0.0])


class TestPageHinkleyDetector:
    def test_no_alarm_on_stationary_input(self):
        rng = np.random.default_rng(17)
        detector = PageHinkleyDetector()
        assert not any(detector.update(x) for x in rng.normal(size=500))

    def test_detects_downward_shift(self):
        rng = np.random.default_rng(5)
        detector = PageHinkleyDetector()
        for x in rng.normal(size=60):
            assert not detector.update(x)
        shifted = rng.normal(loc=-3.0, size=30)
        delays = [i for i, x in enumerate(shifted) if detector.update(x)]
        assert delays and delays[0] <= 12
        assert detector.n_alarms == 1


class TestChiSquareDrift:
    def test_first_window_never_alarms(self):
        detector = ChiSquareDrift(z_threshold=1.0)
        assert not detector.update(np.array([50.0, 30.0, 20.0]))
        assert detector.last_z is None

    def test_stationary_counts_stay_quiet(self):
        rng = np.random.default_rng(23)
        detector = ChiSquareDrift()
        p = np.array([0.5, 0.3, 0.15, 0.05])
        fired = [detector.update(rng.multinomial(400, p).astype(float))
                 for _ in range(100)]
        assert not any(fired)

    def test_distribution_break_alarms(self):
        rng = np.random.default_rng(29)
        detector = ChiSquareDrift(z_threshold=6.0)
        p = np.array([0.5, 0.3, 0.15, 0.05])
        for _ in range(10):
            detector.update(rng.multinomial(400, p).astype(float))
        q = np.array([0.05, 0.15, 0.3, 0.5])
        assert detector.update(rng.multinomial(400, q).astype(float))
        assert detector.last_z > 6.0
        # Post-alarm the broken window is the reference: staying in the
        # new regime does not keep re-alarming.
        fired = [detector.update(rng.multinomial(400, q).astype(float))
                 for _ in range(20)]
        assert not any(fired)

    def test_shape_change_resets_the_reference(self):
        detector = ChiSquareDrift(z_threshold=1.0)
        detector.update(np.array([400.0, 0.0, 0.0]))
        assert not detector.update(np.array([0.0, 400.0, 0.0, 0.0]))

    def test_empty_windows_are_ignored(self):
        detector = ChiSquareDrift(z_threshold=1.0)
        detector.update(np.array([10.0, 10.0]))
        assert not detector.update(np.array([0.0, 0.0]))


class TestPathHealth:
    def test_clean_window_scores_one(self):
        report = PathHealth().update(_good_diagnostics())
        assert report.health == 1.0
        assert report.reasons == []
        assert report.alarms == []
        assert report.gof["ok"] is True

    def test_missing_diagnostics_is_insufficient_evidence(self):
        path = PathHealth()
        report = path.update(None)
        assert report.health is None
        assert report.reasons == ["insufficient-evidence"]
        assert report.gof is None
        assert path.n_updates == 0

    def test_skipped_window_never_touches_detectors(self):
        path = PathHealth()
        for _ in range(20):
            diag = WindowDiagnostics(False, reason="no-losses", n_obs=100)
            report = path.update(diag)
            assert report.health is None
            assert report.alarms == []
        assert path.cusum.baseline.n == 0
        assert path.chi2._prev is None

    def test_loglik_shift_alarms_and_discounts(self):
        path = PathHealth(HealthConfig(warmup=8))
        rng = np.random.default_rng(41)
        for _ in range(30):
            mll = -0.8 + float(rng.normal(scale=0.01))
            assert path.update(_good_diagnostics(mean_loglik=mll)).health \
                == pytest.approx(1.0)
        reports = [path.update(_good_diagnostics(mean_loglik=-0.3))
                   for _ in range(6)]
        alarmed = [r for r in reports if r.alarms]
        assert alarmed, "an 0.5-level shift on a 0.01-noise baseline " \
                        "must fire within 6 windows"
        assert "loglik-shift" in alarmed[0].reasons
        assert alarmed[0].health <= 0.5

    def test_alarm_hold_decays_and_health_recovers(self):
        config = HealthConfig(warmup=8, alarm_hold=3)
        path = PathHealth(config)
        rng = np.random.default_rng(43)
        for _ in range(20):
            mll = -0.8 + float(rng.normal(scale=0.01))
            path.update(_good_diagnostics(mean_loglik=mll))
        healths = [path.update(_good_diagnostics(mean_loglik=-0.3)).health
                   for _ in range(25)]
        assert min(healths) <= 0.5           # the break is visible...
        assert healths[-1] == pytest.approx(1.0)  # ...and health recovers

    def test_absolute_gof_terms_discount_without_alarms(self):
        report = PathHealth().update(
            _good_diagnostics(emission_z=20.0, loss_rate_gap=2.0))
        assert report.alarms == []
        assert report.health < 0.5
        assert "predictive-residual" in report.reasons
        assert "loss-rate-mismatch" in report.reasons

    def test_qk_margin_reason(self):
        report = PathHealth().update(
            _good_diagnostics(below_bound_mass=0.05))
        assert "qk-bound-fragile" in report.reasons
        assert report.health == pytest.approx(0.9)


class TestHealthReportFinalize:
    def test_stamps_identity_and_rounds(self):
        report = HealthReport(0.123456, ["loglik-shift"], ["cusum"], None)
        report.finalize("p0", 7)
        payload = report.to_dict()
        assert payload["path"] == "p0"
        assert payload["window"] == 7
        assert payload["health"] == 0.1235
        assert payload["reasons"] == ["loglik-shift"]
        assert payload["alarms"] == ["cusum"]

    def test_metrics_and_event_when_obs_enabled(self):
        obs.enable()
        enable_health()
        events = []
        obs.bus().add_tap(lambda e: events.append(e))
        report = HealthReport(0.4, ["loglik-shift"], ["cusum"], {"ok": True})
        report.finalize("p0", 3)
        assert obs.registry().gauge_value(
            "repro_model_health", path="p0") == 0.4
        assert obs.registry().gauge_value("repro_model_health_min") == 0.4
        assert obs.registry().counter_value(
            "repro_model_drift_alarms_total", detector="cusum") == 1.0
        health_events = [e for e in events if e["kind"] == "model.health"]
        assert len(health_events) == 1
        assert validate_event(health_events[0]) == []
        assert health_events[0]["health"] == 0.4

    def test_fleet_min_tracks_the_worst_path(self):
        obs.enable()
        enable_health()
        HealthReport(0.9, [], [], None).finalize("a", 0)
        HealthReport(0.2, [], [], None).finalize("b", 0)
        assert obs.registry().gauge_value("repro_model_health_min") == 0.2

    def test_none_health_skips_gauges(self):
        obs.enable()
        enable_health()
        HealthReport(None, ["insufficient-evidence"], [], None).finalize(
            "p0", 0)
        assert obs.registry().gauge_value("repro_model_health_min") is None


class TestHealthStore:
    def _report(self, path, window, health):
        report = HealthReport(health, [], [], None)
        report.finalize(path, window)
        return report

    def test_ring_is_bounded_per_path(self):
        store = HealthStore(per_path=3)
        for i in range(10):
            store.add(self._report("p0", i, 0.9))
        reports = store.path_reports("p0")
        assert len(reports) == 3
        assert [r["window"] for r in reports] == [7, 8, 9]

    def test_confidence_rides_in_the_entry(self):
        store = HealthStore()
        store.add(self._report("p0", 0, 0.8), confidence=0.56789)
        assert store.path_reports("p0")[0]["confidence"] == 0.5679
        store.add(self._report("p0", 1, 0.8))
        assert store.path_reports("p0")[1]["confidence"] is None

    def test_unfinalized_reports_are_dropped(self):
        store = HealthStore()
        store.add(HealthReport(0.5, [], [], None))  # no path stamped
        assert store.paths() == []

    def test_forget_drops_the_path(self):
        store = HealthStore()
        store.add(self._report("p0", 0, 0.9))
        store.forget("p0")
        assert store.path_reports("p0") == []
        assert store.paths() == []

    def test_fleet_rollup(self):
        store = HealthStore()
        store.add(self._report("a", 0, 0.4))
        store.add(self._report("a", 1, 0.8))
        store.add(self._report("b", 0, 0.6))
        store.add(self._report("c", 0, None))
        fleet = store.fleet()
        assert fleet["n_paths"] == 3
        assert fleet["min_health"] == 0.6   # a's latest is 0.8, b 0.6
        assert fleet["mean_health"] == pytest.approx(0.7)
        assert fleet["paths"]["c"]["health"] is None

    def test_empty_fleet(self):
        fleet = HealthStore().fleet()
        assert fleet == {"paths": {}, "min_health": None,
                         "mean_health": None, "n_paths": 0}


class TestVerdictConfidence:
    def test_product_of_health_and_agreement(self):
        assert verdict_confidence(
            0.5, ["strong", "strong", "weak"], "strong") \
            == pytest.approx(0.5 * 2 / 3)

    def test_no_health_falls_back_to_agreement(self):
        assert verdict_confidence(None, ["weak", "weak"], "weak") == 1.0

    def test_no_history_falls_back_to_health(self):
        assert verdict_confidence(0.7, [], None) == pytest.approx(0.7)

    def test_nothing_known_is_none(self):
        assert verdict_confidence(None, [], None) is None
