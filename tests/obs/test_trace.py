"""Record-to-verdict tracing: stamps, stage math, retention, parity."""

import numpy as np
import pytest

from repro import obs
from repro.obs.trace import (STAGE_BUCKETS, TraceStore, WindowTrace,
                             disable_tracing, enable_tracing, is_tracing)
from repro.streaming.windows import SlidingWindowAssembler


def _snapshot_histogram(name, **labels):
    key_labels = tuple(sorted(labels.items()))
    snap = obs.registry().snapshot()
    for (metric, lbls), payload in snap["histograms"].items():
        if metric == name and tuple(lbls) == key_labels:
            return payload
    return None


class TestTracingSwitch:
    def test_flag_round_trip(self):
        assert not is_tracing()
        enable_tracing()
        assert is_tracing()
        disable_tracing()
        assert not is_tracing()

    def test_enable_describes_fine_buckets(self):
        enable_tracing()
        obs.enable()
        obs.observe("repro_trace_stage_seconds", 0.0002, stage="queue")
        buckets, counts, _total, count = _snapshot_histogram(
            "repro_trace_stage_seconds", stage="queue")
        assert tuple(buckets) == STAGE_BUCKETS
        assert count == 1
        assert counts[1] == 1  # 0.0002 lands in the 0.00025 bucket


class TestWindowTraceStages:
    def test_stage_decomposition(self):
        trace = WindowTrace(ingest_first=1.0, ingest_last=2.0,
                            assembled_at=2.0)
        trace.drain_started = 2.5
        trace.fit_started = 2.6
        trace.fit_ended = 3.1
        stages = trace.finalize("p0", 4, published_at=3.2)
        assert stages["ingest"] == pytest.approx(1.0)
        assert stages["queue"] == pytest.approx(0.5)
        assert stages["fit"] == pytest.approx(0.5)
        assert stages["publish"] == pytest.approx(0.1)
        assert stages["total"] == pytest.approx(1.2)

    def test_unreached_stages_are_none(self):
        trace = WindowTrace(ingest_first=1.0, ingest_last=2.0,
                            assembled_at=2.0)
        stages = trace.stages()
        assert stages["queue"] is None
        assert stages["fit"] is None
        assert stages["total"] is None

    def test_stage_durations_clamp_at_zero(self):
        # A clock oddity must never produce a negative duration.
        trace = WindowTrace(ingest_first=2.0, ingest_last=2.0,
                            assembled_at=1.5)
        assert trace.stages()["ingest"] == 0.0

    def test_finalize_records_metrics_and_event(self):
        obs.enable()
        events = []
        obs.bus().add_tap(lambda e: events.append(e))
        trace = WindowTrace(ingest_first=0.0, ingest_last=1.0,
                            assembled_at=1.0)
        trace.drain_started = 1.1
        trace.fit_started = 1.1
        trace.fit_ended = 1.3
        trace.finalize("p0", 0, published_at=1.4)
        traced = [e for e in events if e["kind"] == "trace.window"]
        assert len(traced) == 1
        assert traced[0]["path"] == "p0"
        assert traced[0]["stages"]["total"] == pytest.approx(0.4)
        _b, _c, total, count = _snapshot_histogram(
            "repro_record_to_verdict_seconds")
        assert count == 1
        assert total == pytest.approx(0.4)

    def test_finalize_without_telemetry_still_returns_stages(self):
        trace = WindowTrace(ingest_first=0.0, ingest_last=1.0,
                            assembled_at=1.0)
        stages = trace.finalize("p0", 0, published_at=2.0)
        assert stages["total"] == pytest.approx(1.0)
        assert obs.registry().snapshot()["histograms"] == {}

    def test_to_dict_carries_stamps_and_filtered_stages(self):
        trace = WindowTrace(ingest_first=0.0, ingest_last=1.0,
                            assembled_at=1.0)
        trace.finalize("p9", 3, published_at=1.5)
        d = trace.to_dict()
        assert d["path"] == "p9"
        assert d["window"] == 3
        assert "queue" not in d["stages"]  # never drained
        assert d["stamps"]["drain_started"] is None
        assert d["stamps"]["published_at"] == 1.5


def _finalized(path, window, total):
    trace = WindowTrace(ingest_first=0.0, ingest_last=0.0, assembled_at=0.0)
    trace.drain_started = 0.0
    trace.fit_started = 0.0
    trace.fit_ended = total
    trace.finalize(path, window, published_at=total)
    return trace


class TestTraceStore:
    def test_per_path_ring_is_bounded_oldest_first(self):
        store = TraceStore(per_path=2, slowest=8)
        for i in range(4):
            store.add(_finalized("a", i, total=float(i)))
        traces = store.path_traces("a")
        assert [t["window"] for t in traces] == [2, 3]

    def test_slowest_is_sorted_and_capped(self):
        store = TraceStore(per_path=8, slowest=2)
        for i, total in enumerate([0.1, 0.9, 0.5]):
            store.add(_finalized("a", i, total=total))
        slowest = store.slowest()
        assert [t["stages"]["total"] for t in slowest] == [0.9, 0.5]

    def test_forget_drops_path_but_keeps_exemplars(self):
        store = TraceStore()
        store.add(_finalized("a", 0, total=1.0))
        store.forget("a")
        assert store.path_traces("a") == []
        assert store.paths() == []
        assert len(store.slowest()) == 1

    def test_unknown_path_is_empty(self):
        assert TraceStore().path_traces("nope") == []


class TestAssemblerStamping:
    def test_tracing_off_attaches_no_trace(self):
        assembler = SlidingWindowAssembler(window=4, hop=4)
        emitted = None
        for i in range(4):
            emitted = assembler.push(float(i), 0.01) or emitted
        assert emitted is not None
        assert emitted.trace is None

    def test_tracing_on_stamps_ingest_and_assembly(self):
        enable_tracing()
        assembler = SlidingWindowAssembler(window=4, hop=4)
        emitted = None
        for i in range(4):
            emitted = assembler.push(float(i), 0.01) or emitted
        trace = emitted.trace
        assert trace is not None
        assert trace.ingest_first <= trace.ingest_last <= trace.assembled_at
        assert trace.stages()["ingest"] >= 0.0

    def test_ingest_stamps_are_monotone_despite_clock_regression(self):
        # Force the clamp: pretend the previous stamp came from far in
        # the future, then keep pushing — stamps must never go backwards.
        enable_tracing()
        assembler = SlidingWindowAssembler(window=4, hop=4)
        assembler.push(0.0, 0.01)
        future = assembler._last_stamp + 1e6
        assembler._last_stamp = future
        for i in range(1, 4):
            assembler.push(float(i), 0.01)
        stamps = list(assembler._ingest_times)
        assert stamps == sorted(stamps)
        assert all(s >= future for s in stamps[1:])

    def test_overlapping_windows_reuse_retained_stamps(self):
        enable_tracing()
        assembler = SlidingWindowAssembler(window=4, hop=2)
        windows = []
        for i in range(8):
            emitted = assembler.push(float(i), 0.01)
            if emitted is not None:
                windows.append(emitted)
        assert len(windows) == 3
        for window in windows:
            trace = window.trace
            assert trace.ingest_first <= trace.ingest_last
        # Later windows start no earlier than earlier ones.
        firsts = [w.trace.ingest_first for w in windows]
        assert firsts == sorted(firsts)

    def test_npushed_still_counts_with_tracing(self):
        enable_tracing()
        assembler = SlidingWindowAssembler(window=2, hop=2)
        assembler.push(0.0, np.nan)
        assert assembler.n_pushed == 1
