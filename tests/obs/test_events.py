"""Unit tests for the JSONL event bus and the facade switches."""

import io
import json

import numpy as np
import pytest

from repro import obs
from repro.obs.events import EventBus, json_default


def read_events(path):
    return [json.loads(line) for line in path.read_text().splitlines()]


class TestEventBus:
    def test_disabled_bus_is_a_noop(self):
        bus = EventBus()
        bus.emit("span", name="x")
        assert bus.n_emitted == 0

    def test_path_sink_writes_one_json_object_per_line(self, tmp_path):
        sink = tmp_path / "events.jsonl"
        bus = EventBus()
        bus.configure(sink)
        bus.emit("traceio.load", path="a.csv", n_probes=10, n_losses=2)
        bus.emit("traceio.load", path="b.csv", n_probes=5, n_losses=0)
        bus.close()
        events = read_events(sink)
        assert [e["path"] for e in events] == ["a.csv", "b.csv"]
        for event in events:
            assert set(event) >= {"ts", "wall", "pid", "kind"}
            assert event["kind"] == "traceio.load"

    def test_envelope_fields_win_over_payload_collisions(self, tmp_path):
        sink = tmp_path / "events.jsonl"
        bus = EventBus()
        bus.configure(sink)
        bus.emit("window", kind="bogus", pid=-1, ts="later", path="p0")
        bus.close()
        (event,) = read_events(sink)
        assert event["kind"] == "window"
        assert event["pid"] != -1
        assert isinstance(event["ts"], float)
        assert event["path"] == "p0"

    def test_stream_sink(self):
        stream = io.StringIO()
        bus = EventBus()
        bus.configure(stream)
        bus.emit("span", name="x", span="1-1", parent=None, dur_ms=0.1)
        assert bus.path is None
        event = json.loads(stream.getvalue())
        assert event["name"] == "x"

    def test_appends_across_reconfigure(self, tmp_path):
        sink = tmp_path / "events.jsonl"
        bus = EventBus()
        bus.configure(sink)
        bus.emit("span", name="first")
        bus.close()
        bus.configure(sink)
        bus.emit("span", name="second")
        bus.close()
        assert [e["name"] for e in read_events(sink)] == ["first", "second"]

    def test_torn_down_sink_never_raises(self):
        stream = io.StringIO()
        bus = EventBus()
        bus.configure(stream)
        stream.close()
        bus.emit("span", name="x")  # must not raise
        assert not bus.enabled
        assert bus.n_emitted == 0

    def test_numpy_payloads_serialize(self, tmp_path):
        sink = tmp_path / "events.jsonl"
        bus = EventBus()
        bus.configure(sink)
        bus.emit("em.restart", loglik=np.float64(-12.5),
                 n_iter=np.int64(7), logliks=np.array([-13.0, -12.5]))
        bus.close()
        (event,) = read_events(sink)
        assert event["loglik"] == -12.5
        assert event["n_iter"] == 7
        assert event["logliks"] == [-13.0, -12.5]

    def test_json_default_falls_back_to_str(self):
        assert json_default(object()).startswith("<object")


class TestFacade:
    def test_off_by_default_and_entry_points_noop(self):
        assert not obs.is_enabled()
        obs.inc("repro_test_total")
        obs.set_gauge("repro_test_gauge", 1.0)
        obs.observe("repro_test_seconds", 0.1)
        obs.emit("span", name="x")
        assert obs.registry().family_names() == []
        assert obs.bus().n_emitted == 0

    def test_enable_disable_cycle(self, tmp_path):
        sink = tmp_path / "events.jsonl"
        obs.enable(events=sink)
        assert obs.is_enabled()
        obs.inc("repro_test_total")
        obs.emit("traceio.load", path="x", n_probes=1, n_losses=0)
        obs.disable()
        assert not obs.is_enabled()
        # Metrics survive disable; events stop.
        assert obs.registry().counter_value("repro_test_total") == 1.0
        obs.emit("traceio.load", path="y", n_probes=1, n_losses=0)
        assert len(sink.read_text().splitlines()) == 1

    def test_enable_clear_drops_old_samples(self):
        obs.enable()
        obs.inc("repro_test_total", 5.0)
        obs.enable(clear=True)
        assert obs.registry().counter_value("repro_test_total") == 0.0

    def test_current_config_round_trip_for_path_sinks(self, tmp_path):
        sink = tmp_path / "events.jsonl"
        obs.enable(events=sink)
        config = obs.current_config()
        assert config == {"enabled": True, "events": str(sink),
                          "model_health": False}
        obs.disable()
        obs.apply_config(config)
        assert obs.is_enabled()
        assert obs.bus().path == sink

    def test_stream_sinks_do_not_travel_to_workers(self):
        obs.enable(events=io.StringIO())
        config = obs.current_config()
        assert config == {"enabled": True, "events": None,
                          "model_health": False}

    def test_apply_disabled_config_turns_telemetry_off(self):
        obs.enable()
        obs.apply_config({"enabled": False, "events": None})
        assert not obs.is_enabled()

    def test_get_logger_namespacing(self):
        assert obs.get_logger("models.mmhd").name == "repro.models.mmhd"
        assert obs.get_logger("repro.cli").name == "repro.cli"
        # The package root ships a NullHandler so imports never print.
        import logging

        root = logging.getLogger("repro")
        assert any(isinstance(h, logging.NullHandler) for h in root.handlers)


class TestTaps:
    def test_tap_sees_events_without_any_sink(self):
        bus = EventBus()
        seen = []
        bus.add_tap(seen.append)
        bus.emit("span", name="x", span="1-1", parent=None, dur_ms=0.5)
        assert len(seen) == 1
        assert seen[0]["kind"] == "span"
        assert {"ts", "wall", "pid"} <= set(seen[0])
        assert bus.n_emitted == 0  # nothing written: no sink

    def test_tap_and_sink_both_receive(self):
        stream = io.StringIO()
        bus = EventBus()
        bus.configure(stream)
        seen = []
        bus.add_tap(seen.append)
        bus.emit("span", name="x", span="1-1", parent=None, dur_ms=0.5)
        assert len(seen) == 1
        assert json.loads(stream.getvalue())["name"] == "x"
        assert bus.n_emitted == 1

    def test_add_tap_is_idempotent_and_remove_is_safe(self):
        bus = EventBus()
        seen = []
        bus.add_tap(seen.append)
        bus.add_tap(seen.append)
        bus.emit("span", name="x")
        assert len(seen) == 1
        bus.remove_tap(seen.append)
        bus.remove_tap(seen.append)  # second removal: no-op
        bus.emit("span", name="y")
        assert len(seen) == 1

    def test_tap_exceptions_never_break_emit(self):
        stream = io.StringIO()
        bus = EventBus()
        bus.configure(stream)

        def bad_tap(event):
            raise RuntimeError("observer bug")

        bus.add_tap(bad_tap)
        bus.emit("span", name="x")  # must not raise
        assert bus.n_emitted == 1


class TestRotation:
    def test_sink_rotates_at_max_bytes(self, tmp_path):
        sink = tmp_path / "events.jsonl"
        bus = EventBus()
        bus.configure(sink, max_bytes=400)
        for i in range(20):
            bus.emit("span", name=f"span-{i}", span="1-1", parent=None,
                     dur_ms=1.0)
        bus.close()
        rotated = tmp_path / "events.jsonl.1"
        assert rotated.exists()
        assert bus.n_rotations >= 1
        names = [e["name"] for e in read_events(rotated)]
        names += [e["name"] for e in read_events(sink)]
        # Disk usage is bounded, so only a recent contiguous tail
        # survives — but every retained line is intact JSON, in order,
        # ending with the newest event.
        first = int(names[0].split("-")[1])
        assert names == [f"span-{i}" for i in range(first, 20)]
        assert sink.stat().st_size <= 400

    def test_rotation_keeps_exactly_one_old_generation(self, tmp_path):
        sink = tmp_path / "events.jsonl"
        bus = EventBus()
        bus.configure(sink, max_bytes=200)
        for i in range(60):
            bus.emit("span", name=f"s{i}", span="1-1", parent=None,
                     dur_ms=1.0)
        bus.close()
        assert bus.n_rotations >= 3
        assert sorted(p.name for p in tmp_path.iterdir()) == [
            "events.jsonl", "events.jsonl.1"]

    def test_max_bytes_validation(self):
        bus = EventBus()
        with pytest.raises(ValueError):
            bus.configure(io.StringIO(), max_bytes=0)

    def test_facade_enable_passes_max_bytes(self, tmp_path):
        sink = tmp_path / "events.jsonl"
        obs.enable(events=sink, max_bytes=300)
        for i in range(20):
            obs.emit("span", name=f"s{i}", span="1-1", parent=None,
                     dur_ms=1.0)
        obs.disable()
        assert (tmp_path / "events.jsonl.1").exists()
