"""The bounded in-memory time-series store behind ``GET /query``."""

import pytest

from repro.obs.metrics import MetricsRegistry
from repro.obs.tsdb import TimeSeriesStore, series_key


def _registry():
    registry = MetricsRegistry()
    registry.inc("requests_total", 3.0, route="/fleet")
    registry.set_gauge("backlog", 7.0)
    return registry


class TestSeriesKey:
    def test_bare_name_without_labels(self):
        assert series_key("backlog", ()) == "backlog"

    def test_labelled_key(self):
        key = series_key("requests_total", (("route", "/fleet"),))
        assert key == 'requests_total{route="/fleet"}'


class TestCollect:
    def test_counters_and_gauges_become_points(self):
        store = TimeSeriesStore(interval=1.0)
        assert store.collect(_registry(), now=100.0)
        result = store.query("backlog")
        assert result["series"]["backlog"] == [[100.0, 7.0]]

    def test_collect_self_throttles_within_interval(self):
        store = TimeSeriesStore(interval=1.0)
        registry = _registry()
        assert store.collect(registry, now=100.0)
        assert not store.collect(registry, now=100.5)
        assert store.collect(registry, now=101.0)
        assert len(store.query("backlog")["series"]["backlog"]) == 2

    def test_histograms_expand_to_count_and_quantiles(self):
        registry = MetricsRegistry()
        for value in (0.002, 0.002, 0.002, 0.02):
            registry.observe("lat_seconds", value)
        store = TimeSeriesStore()
        store.collect(registry, now=10.0)
        names = store.series_names()
        assert "lat_seconds:count" in names
        assert "lat_seconds:p50" in names
        assert "lat_seconds:p95" in names
        assert "lat_seconds:p99" in names
        count = store.query("lat_seconds:count")["series"]
        assert count["lat_seconds:count"] == [[10.0, 4.0]]

    def test_empty_histogram_gets_count_but_no_quantiles(self):
        registry = MetricsRegistry()
        registry.observe("lat_seconds", 1.0)
        snap_registry = MetricsRegistry()
        # Describe-only family: no observations, no histogram series at
        # all — nothing to store, nothing to crash on.
        store = TimeSeriesStore()
        store.collect(snap_registry, now=1.0)
        assert store.series_names() == []

    def test_max_series_cap_counts_drops(self):
        store = TimeSeriesStore(max_series=1)
        store.collect(_registry(), now=1.0)
        assert len(store.series_names()) == 1
        assert store.dropped_series == 1

    def test_bad_interval_rejected(self):
        with pytest.raises(ValueError):
            TimeSeriesStore(interval=0.0)


class TestQuery:
    def test_family_query_matches_labels_and_subseries(self):
        registry = MetricsRegistry()
        registry.inc("requests_total", 1.0, route="/fleet")
        registry.inc("requests_total", 2.0, route="/slo")
        store = TimeSeriesStore()
        store.collect(registry, now=5.0)
        result = store.query("requests_total")
        assert set(result["series"]) == {
            'requests_total{route="/fleet"}',
            'requests_total{route="/slo"}',
        }

    def test_family_query_matches_histogram_subseries(self):
        registry = MetricsRegistry()
        registry.observe("lat_seconds", 0.01)
        store = TimeSeriesStore()
        store.collect(registry, now=5.0)
        result = store.query("lat_seconds")
        assert "lat_seconds:count" in result["series"]
        assert "lat_seconds:p99" in result["series"]

    def test_since_filters_old_points(self):
        store = TimeSeriesStore(interval=1.0)
        registry = _registry()
        store.collect(registry, now=100.0)
        store.collect(registry, now=101.0)
        store.collect(registry, now=102.0)
        points = store.query("backlog", since=101.0)["series"]["backlog"]
        assert [ts for ts, _ in points] == [101.0, 102.0]

    def test_unknown_series_returns_empty(self):
        store = TimeSeriesStore()
        assert store.query("nope")["series"] == {}

    def test_interval_is_reported(self):
        assert TimeSeriesStore(interval=2.5).query("x")["interval"] == 2.5


class TestRetentionAndDownsampling:
    def test_hires_ring_is_bounded(self):
        store = TimeSeriesStore(interval=1.0, retention=3,
                                downsample=100, lores_retention=10)
        registry = _registry()
        for i in range(6):
            store.collect(registry, now=100.0 + i)
        points = store.query("backlog")["series"]["backlog"]
        assert [ts for ts, _ in points] == [103.0, 104.0, 105.0]

    def test_lores_extends_history_past_hires(self):
        # retention=2 hi-res slots, downsample every 2 samples: old means
        # survive in the lo-res ring and come back in family queries.
        store = TimeSeriesStore(interval=1.0, retention=2, downsample=2,
                                lores_retention=8)
        registry = MetricsRegistry()
        for i in range(6):
            registry.set_gauge("g", float(i))
            store.collect(registry, now=100.0 + i)
        points = store.query("g")["series"]["g"]
        timestamps = [ts for ts, _ in points]
        # hi-res keeps 104/105; lo-res means at 101 (avg 0,1) and 103
        # (avg 2,3) fill in the older history, in order.
        assert timestamps == [101.0, 103.0, 104.0, 105.0]
        assert points[0][1] == pytest.approx(0.5)
        assert points[1][1] == pytest.approx(2.5)

    def test_ten_minutes_of_history_at_one_hertz(self):
        # The acceptance shape: >= 10 minutes of per-second history.
        store = TimeSeriesStore()  # defaults: 600 x 1s + 360 x 10s
        registry = _registry()
        for i in range(700):
            store.collect(registry, now=1000.0 + i)
        points = store.query("backlog")["series"]["backlog"]
        span = points[-1][0] - points[0][0]
        assert span >= 600.0
