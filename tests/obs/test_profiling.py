"""Tests for opt-in per-phase cProfile capture."""

import io
import json

import pytest

from repro import obs
from repro.obs import profiling
from repro.obs.profiling import (
    PhaseProfiler,
    active_profiler,
    disable_profiling,
    enable_profiling,
    profile_phase,
)
from repro.obs.schema import validate_event


@pytest.fixture(autouse=True)
def profiler_reset():
    disable_profiling()
    yield
    disable_profiling()


def busy(n=2000):
    return sum(i * i for i in range(n))


class TestPhaseProfiler:
    def test_phase_records_calls_functions_and_time(self):
        profiler = PhaseProfiler(top=5)
        for _ in range(3):
            with profiler.phase("identify.fit"):
                busy()
        stats = profiler.to_dict()
        entry = stats["identify.fit"]
        assert entry["calls"] == 3
        assert entry["profiled_calls"] == 3
        assert entry["total_ms"] >= 0.0
        assert 1 <= len(entry["top"]) <= 5
        assert all({"func", "ncalls", "cum_ms"} <= set(row)
                   for row in entry["top"])
        assert any("busy" in row["func"] for row in entry["top"])

    def test_nested_phase_records_wall_clock_only(self):
        profiler = PhaseProfiler()
        with profiler.phase("outer"):
            with profiler.phase("inner"):
                busy()
        stats = profiler.to_dict()
        assert stats["outer"]["profiled_calls"] == 1
        assert stats["inner"]["calls"] == 1
        assert stats["inner"]["profiled_calls"] == 0  # cProfile cannot nest
        assert stats["inner"]["top"] == []

    def test_top_validation(self):
        with pytest.raises(ValueError):
            PhaseProfiler(top=0)

    def test_format_renders_hottest_phase_first(self):
        profiler = PhaseProfiler()
        with profiler.phase("a"):
            busy(100)
        text = profiler.format()
        assert "a: 1 call(s)" in text
        assert "ms total" in text


class TestModuleSwitch:
    def test_profile_phase_is_noop_when_disabled(self):
        assert active_profiler() is None
        with profile_phase("identify.fit"):
            busy(100)
        assert active_profiler() is None

    def test_enable_capture_disable_round_trip(self):
        enabled = enable_profiling(top=4)
        assert active_profiler() is enabled
        with profile_phase("window.fit"):
            busy()
        profiler = disable_profiling()
        assert profiler is enabled
        assert active_profiler() is None
        assert profiler.to_dict()["window.fit"]["calls"] == 1

    def test_emit_events_produces_valid_profile_events(self):
        sink = io.StringIO()
        obs.enable(events=sink, clear=True)
        profiler = enable_profiling()
        with profile_phase("identify.fit"):
            busy()
        disable_profiling()
        profiler.emit_events()
        (line,) = [ln for ln in sink.getvalue().splitlines() if ln]
        event = json.loads(line)
        assert validate_event(event) == []
        assert event["kind"] == "profile.phase"
        assert event["phase"] == "identify.fit"
        assert event["calls"] == 1
        assert event["top"]


class TestPipelineIntegration:
    def test_identify_phases_show_up(self):
        import numpy as np

        from repro.core.identify import IdentifyConfig, identify
        from repro.models.base import EMConfig
        from repro.netsim.trace import PathObservation

        rng = np.random.default_rng(0)
        send = np.arange(1200) * 0.02
        delays = np.where(rng.random(1200) < 0.2, np.nan,
                          0.02 + rng.uniform(0, 0.1, 1200))
        profiler = enable_profiling()
        identify(PathObservation(send, delays),
                 IdentifyConfig(n_hidden=1,
                                em=EMConfig(tol=1e-2, max_iter=20)))
        disable_profiling()
        stats = profiler.to_dict()
        assert {"identify.discretize", "identify.fit",
                "identify.tests"} <= set(stats)
        assert stats["identify.fit"]["total_ms"] > 0
