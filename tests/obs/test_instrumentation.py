"""Integration tests: telemetry through the real identification stack.

These exercise the wiring rather than the units — EM fits feeding
counters and events, worker-pool metric merging staying deterministic,
tracker skip paths being visible, and every emitted event matching the
schema catalog.
"""

import io
import json

import numpy as np
import pytest

from repro import obs
from repro.models.base import LOSS, EMConfig, ObservationSequence
from repro.models.mmhd import fit_mmhd
from repro.netsim.trace import PathObservation
from repro.obs.schema import validate_event
from repro.parallel import parallel_map
from repro.streaming.tracker import (
    MonitorConfig,
    PathMonitor,
    VerdictTracker,
    WindowAnalysis,
)
from repro.streaming.windows import ProbeWindow

FAST_EM = EMConfig(tol=1e-3, max_iter=50, n_restarts=2, seed=3)


def toy_sequence(n=300, seed=0):
    rng = np.random.default_rng(seed)
    symbols = rng.integers(1, 4, size=n)
    symbols[rng.random(n) < 0.1] = LOSS
    return ObservationSequence(symbols, n_symbols=3)


def _metered_task(item):
    obs.inc("repro_test_tasks_total", 1.0, parity=item % 2)
    obs.observe("repro_test_seconds", 0.01 * (item + 1))
    return item * 2


class TestEMTelemetry:
    def test_fit_records_counters_and_events(self):
        stream = io.StringIO()
        obs.enable(events=stream)
        fit_mmhd(toy_sequence(), n_hidden=1, config=FAST_EM)
        reg = obs.registry()
        assert reg.counter_value("repro_em_fits_total", model="mmhd") == 1.0
        assert reg.counter_value("repro_em_restarts_total", model="mmhd") == 2.0
        assert reg.counter_value("repro_em_iterations_total",
                                 model="mmhd") > 0
        wins = sum(reg.counter_value("repro_em_restart_wins_total", restart=r)
                   for r in range(FAST_EM.n_restarts))
        assert wins == 1.0
        assert reg.histogram_count(obs.SPAN_SECONDS, name="em.fit") == 1

        events = [json.loads(line) for line in stream.getvalue().splitlines()]
        by_kind = {}
        for event in events:
            assert validate_event(event) == [], event
            by_kind.setdefault(event["kind"], []).append(event)
        assert len(by_kind["em.restart"]) == 2
        (fit_event,) = by_kind["em.fit"]
        assert fit_event["n_restarts"] == 2
        assert len(fit_event["restart_logliks"]) == 2
        assert fit_event["loglik_dispersion"] >= 0.0
        # The winning restart's trajectory is reconstructable from the
        # per-restart events (the non-monotone-EM debugging workflow).
        best = by_kind["em.restart"][fit_event["best_restart"]]
        assert best["logliks"][-1] == pytest.approx(best["loglik"], abs=1e-5)

    def test_disabled_fit_records_nothing(self):
        fit_mmhd(toy_sequence(), n_hidden=1, config=FAST_EM)
        assert obs.registry().family_names() == []


def assert_snapshots_match(a, b):
    """Equality up to float round-off in histogram sums.

    Counts, buckets, and integer-valued counters merge exactly for any
    worker split; histogram *totals* are float sums whose grouping
    depends on which worker ran which task, so they match only to ulp.
    """
    assert a["counters"] == b["counters"]
    assert a["gauges"] == b["gauges"]
    assert set(a["histograms"]) == set(b["histograms"])
    for key, (buckets, counts, total, count) in a["histograms"].items():
        other_buckets, other_counts, other_total, other_count = \
            b["histograms"][key]
        assert buckets == other_buckets
        assert counts == other_counts
        assert count == other_count
        assert total == pytest.approx(other_total)


class TestParallelMerge:
    def test_metrics_identical_for_any_n_jobs(self):
        snapshots = []
        for n_jobs in (1, 2):
            obs.enable(clear=True)
            results = parallel_map(_metered_task, list(range(6)),
                                   n_jobs=n_jobs)
            assert results == [i * 2 for i in range(6)]
            snapshots.append(obs.metrics_snapshot())
            obs.disable()
        assert_snapshots_match(snapshots[0], snapshots[1])
        counters = snapshots[0]["counters"]
        assert counters[("repro_test_tasks_total",
                         (("parity", "0"),))] == 3.0
        assert counters[("repro_test_tasks_total",
                         (("parity", "1"),))] == 3.0

    def test_em_fit_metrics_identical_for_any_n_jobs(self):
        seq = toy_sequence()
        snapshots = []
        for n_jobs in (1, 2):
            obs.enable(clear=True)
            fit_mmhd(seq, n_hidden=1, config=FAST_EM.replace(n_jobs=n_jobs))
            snapshot = obs.metrics_snapshot()
            snapshot["histograms"].pop(("repro_span_seconds",
                                        (("name", "em.fit"),)), None)
            snapshots.append(snapshot)  # wall-clock span durations differ
            obs.disable()
        assert_snapshots_match(snapshots[0], snapshots[1])

    def test_disabled_telemetry_adds_no_wrapping(self):
        results = parallel_map(_metered_task, list(range(4)), n_jobs=2)
        assert results == [0, 2, 4, 6]
        assert obs.registry().family_names() == []


class TestTrackerTelemetry:
    @staticmethod
    def probe_window(index=0):
        n = 10
        observation = PathObservation(
            np.arange(n) * 0.02, np.full(n, 0.03)
        )
        return ProbeWindow(index=index, start=0, stop=n,
                           observation=observation)

    def test_skipped_window_increments_reason_counter(self):
        obs.enable()
        tracker = VerdictTracker(confirm=2, memory=3)
        analysis = WindowAnalysis(
            "skipped", reason="degenerate: zero queuing range"
        )
        event = tracker.event_for("p0", self.probe_window(), analysis)
        reg = obs.registry()
        # The full reason stays on the event; the metric label is the
        # bounded prefix.
        assert event.to_dict()["reason"] == "degenerate: zero queuing range"
        assert reg.counter_value("repro_windows_skipped_total",
                                 reason="degenerate") == 1.0
        assert reg.counter_value("repro_windows_total") == 0.0

    def test_analyzed_window_counts_verdicts_and_changes(self):
        obs.enable()
        tracker = VerdictTracker(confirm=1, memory=3)
        for index in range(2):
            tracker.event_for("p0", self.probe_window(index),
                              WindowAnalysis("ok", verdict="strong"))
        reg = obs.registry()
        assert reg.counter_value("repro_windows_total") == 2.0
        assert reg.counter_value("repro_window_verdicts_total",
                                 verdict="strong") == 2.0
        assert reg.counter_value("repro_verdict_changes_total") == 1.0
        assert reg.histogram_count("repro_window_lag_seconds") == 2

    def test_skip_logs_even_with_telemetry_off(self, caplog):
        tracker = VerdictTracker(confirm=2, memory=3)
        with caplog.at_level("INFO", logger="repro.streaming.tracker"):
            tracker.event_for("p0", self.probe_window(),
                              WindowAnalysis("skipped", reason="no-losses"))
        assert any("skipped" in record.message and "no-losses" in str(record.args)
                   for record in caplog.records)
        assert obs.registry().family_names() == []


class TestMonitorEventStream:
    def test_every_emitted_event_is_schema_valid(self):
        from repro.experiments.streams import strong_dcl_stream

        stream = io.StringIO()
        obs.enable(events=stream)
        config = MonitorConfig(window=600, hop=300, n_hidden=1,
                               confirm=2, memory=3,
                               gate_stationarity=False, em=FAST_EM)
        monitor = PathMonitor(config, path="p0")
        events = monitor.run(list(strong_dcl_stream(1500, seed=20)))
        assert events

        emitted = [json.loads(line)
                   for line in stream.getvalue().splitlines()]
        assert emitted
        kinds = {event["kind"] for event in emitted}
        assert {"span", "streaming.fit", "window"} <= kinds
        for event in emitted:
            assert validate_event(event) == [], event
        window_events = [e for e in emitted if e["kind"] == "window"]
        assert len(window_events) == len(events)
        reg = obs.registry()
        fits = (reg.counter_value("repro_streaming_fits_total", mode="warm")
                + reg.counter_value("repro_streaming_fits_total", mode="cold"))
        assert fits == len([e for e in events if e.analysis.analyzed])

    @pytest.mark.parametrize("drain_mode", ["fused", "pool"])
    def test_drain_rounds_emit_telemetry(self, drain_mode):
        from repro.experiments.streams import strong_dcl_stream
        from repro.streaming.scheduler import MultiPathMonitor

        stream = io.StringIO()
        obs.enable(events=stream)
        config = MonitorConfig(window=600, hop=300, n_hidden=1,
                               confirm=2, memory=3,
                               gate_stationarity=False, em=FAST_EM)
        monitor = MultiPathMonitor(config, drain_mode=drain_mode)
        events = monitor.run_streams(
            {f"p{i}": list(strong_dcl_stream(900, seed=20 + i))
             for i in range(2)}
        )
        assert events

        emitted = [json.loads(line)
                   for line in stream.getvalue().splitlines()]
        rounds = [e for e in emitted if e["kind"] == "drain.round"]
        assert rounds
        for event in rounds:
            assert validate_event(event) == [], event
            assert event["mode"] == drain_mode
            assert 0.0 <= event["pad_fraction"] <= 1.0
        assert sum(e["windows"] for e in rounds) == len(events)
        if drain_mode == "fused":
            assert any(e["groups"] >= 1 and e["rows"] >= 1 for e in rounds)
        else:
            assert all(e["groups"] == 0 and e["rows"] == 0 for e in rounds)
        reg = obs.registry()
        assert reg.counter_value("repro_drain_rounds_total",
                                 mode=drain_mode) == len(rounds)
        assert reg.counter_value("repro_drain_windows_total",
                                 mode=drain_mode) == len(events)
