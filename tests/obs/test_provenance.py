"""Tests for run-provenance manifests: capture, round-trip, reproduce."""

import io
import json

import numpy as np
import pytest

from repro import obs
from repro.core.identify import IdentifyConfig, identify
from repro.models.base import EMConfig
from repro.netsim.trace import PathObservation
from repro.obs import provenance
from repro.streaming.tracker import MonitorConfig


def strong_observation(n=2000, q_k=0.1, seed=0):
    rng = np.random.default_rng(seed)
    send = np.arange(n) * 0.02
    delays = np.empty(n)
    queue = 0.0
    for i in range(n):
        queue = min(q_k, max(0.0, queue + rng.uniform(-0.012, 0.015)))
        if queue >= q_k - 1e-12 and rng.random() < 0.7:
            delays[i] = np.nan
        else:
            delays[i] = 0.02 + queue
    return PathObservation(send, delays)


class TestConfigRoundTrip:
    def test_identify_config_survives_serialization(self):
        config = IdentifyConfig(
            n_symbols=7, n_hidden=1, model="hmm", beta0=0.1, beta1=0.01,
            em=EMConfig(tol=1e-2, max_iter=33, seed=42, n_restarts=2),
        )
        data = json.loads(json.dumps(provenance.config_to_dict(config)))
        rebuilt = provenance.identify_config_from_manifest({"config": data})
        assert isinstance(rebuilt, IdentifyConfig)
        assert vars(rebuilt.em) == vars(config.em)
        for key, value in vars(config).items():
            if key != "em":
                assert vars(rebuilt)[key] == value

    def test_monitor_config_survives_serialization(self):
        config = MonitorConfig(window=600, hop=300, n_hidden=1, confirm=2,
                               memory=3, gate_stationarity=False,
                               em=EMConfig(seed=7))
        data = json.loads(json.dumps(provenance.config_to_dict(config)))
        rebuilt = provenance.monitor_config_from_manifest({"config": data})
        assert isinstance(rebuilt, MonitorConfig)
        assert vars(rebuilt.em) == vars(config.em)
        assert rebuilt.window == 600 and rebuilt.confirm == 2

    def test_wrong_config_type_is_rejected(self):
        data = provenance.config_to_dict(MonitorConfig())
        with pytest.raises(ValueError, match="MonitorConfig"):
            provenance.identify_config_from_manifest({"config": data})

    def test_unknown_type_is_rejected(self):
        with pytest.raises(ValueError, match="bogus"):
            provenance.identify_config_from_manifest(
                {"config": {"__type__": "bogus"}})


class TestCollect:
    def test_manifest_captures_environment_and_seeds(self):
        config = IdentifyConfig(em=EMConfig(seed=13))
        manifest = provenance.collect_manifest(
            "identify", config=config, argv=["repro", "identify", "x.csv"],
            inputs=["x.csv"], seeds={"demo": 5},
        )
        assert manifest["schema"] == provenance.MANIFEST_SCHEMA
        assert manifest["command"] == "identify"
        assert len(manifest["run_id"]) == 12
        assert manifest["argv"] == ["repro", "identify", "x.csv"]
        assert manifest["inputs"] == ["x.csv"]
        assert manifest["seeds"] == {"demo": 5, "em": 13}
        assert manifest["config"]["__type__"] == "IdentifyConfig"
        assert "numpy" in manifest["packages"]
        assert "repro" in manifest["packages"]
        assert manifest["python"].count(".") >= 1
        assert manifest["platform"]
        # The repo this test runs in is a git checkout.
        assert manifest["git_sha"] is None or len(manifest["git_sha"]) == 40

    def test_write_and_load_round_trip(self, tmp_path):
        manifest = provenance.collect_manifest("bound")
        path = provenance.write_manifest(manifest, tmp_path / "m.json")
        assert provenance.load_manifest(path) == json.loads(
            json.dumps(manifest))

    def test_record_run_emits_event_and_writes_artifact(self, tmp_path):
        sink = io.StringIO()
        obs.enable(events=sink, clear=True)
        out = tmp_path / "manifest.json"
        manifest = provenance.record_run("monitor", config=MonitorConfig(),
                                         out_path=out)
        assert out.exists()
        (line,) = [ln for ln in sink.getvalue().splitlines() if ln]
        event = json.loads(line)
        assert event["kind"] == "run.manifest"
        assert event["run_id"] == manifest["run_id"]
        assert event["manifest_path"] == str(out)
        assert event["manifest"]["command"] == "monitor"

    def test_record_run_without_telemetry_still_writes_artifact(self,
                                                                tmp_path):
        out = tmp_path / "manifest.json"
        provenance.record_run("identify", out_path=out)
        assert json.loads(out.read_text())["command"] == "identify"


class TestReproduce:
    def test_verdict_reproducible_from_manifest_alone(self, tmp_path):
        """The acceptance property: rebuild the config from the manifest
        and the rerun produces the identical verdict and G pmf."""
        observation = strong_observation()
        config = IdentifyConfig(
            n_hidden=1, em=EMConfig(tol=1e-2, max_iter=40, seed=3),
        )
        first = identify(observation, config)
        manifest = provenance.collect_manifest("identify", config=config)
        path = provenance.write_manifest(manifest, tmp_path / "m.json")

        loaded = provenance.load_manifest(path)
        rebuilt_config = provenance.identify_config_from_manifest(loaded)
        second = identify(observation, rebuilt_config)

        assert second.verdict == first.verdict
        np.testing.assert_array_equal(second.distribution.pmf,
                                      first.distribution.pmf)
