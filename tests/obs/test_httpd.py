"""Tests for the routing HTTP server and the metrics scrape endpoint."""

import json
import socket
import urllib.error
import urllib.request

import pytest

from repro.obs.httpd import (HTTPError, MetricsServer, RoutingHTTPServer,
                             json_response)
from repro.obs.metrics import MetricsRegistry


@pytest.fixture
def server():
    registry = MetricsRegistry()
    registry.describe("repro_windows_total", "Windows analysed.")
    registry.inc("repro_windows_total", 4.0)
    registry.observe("repro_span_seconds", 0.02, name="em.fit")
    srv = MetricsServer(registry=registry, port=0).start()
    yield srv
    srv.close()


def get(url):
    with urllib.request.urlopen(url, timeout=5) as response:
        return response.status, response.headers, response.read()


class TestMetricsServer:
    def test_ephemeral_port_is_bound_and_in_url(self, server):
        assert server.port > 0
        assert server.url == f"http://127.0.0.1:{server.port}/metrics"

    def test_metrics_endpoint_serves_prometheus_text(self, server):
        status, headers, body = get(server.url)
        assert status == 200
        assert headers["Content-Type"].startswith("text/plain")
        text = body.decode()
        assert "# TYPE repro_windows_total counter" in text
        assert "repro_windows_total 4" in text
        assert 'repro_span_seconds_bucket{name="em.fit",le="+Inf"} 1' in text

    def test_json_endpoint(self, server):
        base = server.url.rsplit("/", 1)[0]
        status, headers, body = get(f"{base}/metrics.json")
        assert status == 200
        assert headers["Content-Type"] == "application/json"
        payload = json.loads(body)
        assert payload["counters"]["repro_windows_total"][0]["value"] == 4.0

    def test_healthz(self, server):
        base = server.url.rsplit("/", 1)[0]
        status, _, body = get(f"{base}/healthz")
        assert status == 200
        assert body == b"ok\n"

    def test_unknown_path_is_404(self, server):
        base = server.url.rsplit("/", 1)[0]
        with pytest.raises(urllib.error.HTTPError) as excinfo:
            get(f"{base}/nope")
        assert excinfo.value.code == 404

    def test_scrape_reflects_live_updates(self):
        registry = MetricsRegistry()
        srv = MetricsServer(registry=registry, port=0).start()
        try:
            registry.inc("repro_windows_total")
            _, _, body = get(srv.url)
            assert "repro_windows_total 1" in body.decode()
            registry.inc("repro_windows_total")
            _, _, body = get(srv.url)
            assert "repro_windows_total 2" in body.decode()
        finally:
            srv.close()

    def test_close_is_idempotent(self):
        srv = MetricsServer(registry=MetricsRegistry(), port=0).start()
        srv.close()
        srv.close()


class TestRoutingServer:
    def routes(self, observed=None):
        def echo(request):
            return json_response({"id": request.params["id"],
                                  "method": request.method})

        def boom(_request):
            raise HTTPError(418, "teapot")

        def crash(_request):
            raise RuntimeError("kaboom")

        return [
            ("GET", "/things/{id}", echo),
            ("POST", "/things/{id}", echo),
            ("GET", "/boom", boom),
            ("GET", "/crash", crash),
        ]

    def test_path_params_and_methods(self):
        srv = RoutingHTTPServer(self.routes(), port=0).start()
        try:
            _, _, body = get(f"{srv.base_url}/things/42")
            assert json.loads(body) == {"id": "42", "method": "GET"}
            req = urllib.request.Request(f"{srv.base_url}/things/seven",
                                         data=b"", method="POST")
            with urllib.request.urlopen(req, timeout=5) as response:
                assert json.loads(response.read())["method"] == "POST"
        finally:
            srv.close()

    def test_wrong_method_is_405_and_unknown_is_404(self):
        srv = RoutingHTTPServer(self.routes(), port=0).start()
        try:
            req = urllib.request.Request(f"{srv.base_url}/boom",
                                         data=b"", method="POST")
            with pytest.raises(urllib.error.HTTPError) as excinfo:
                urllib.request.urlopen(req, timeout=5)
            assert excinfo.value.code == 405
            with pytest.raises(urllib.error.HTTPError) as excinfo:
                get(f"{srv.base_url}/nowhere")
            assert excinfo.value.code == 404
        finally:
            srv.close()

    def test_http_error_and_crash_become_json_errors(self):
        srv = RoutingHTTPServer(self.routes(), port=0).start()
        try:
            with pytest.raises(urllib.error.HTTPError) as excinfo:
                get(f"{srv.base_url}/boom")
            assert excinfo.value.code == 418
            assert json.loads(excinfo.value.read())["error"] == "teapot"
            with pytest.raises(urllib.error.HTTPError) as excinfo:
                get(f"{srv.base_url}/crash")
            assert excinfo.value.code == 500
            assert "kaboom" in json.loads(excinfo.value.read())["error"]
        finally:
            srv.close()

    def test_observer_sees_route_pattern_and_status(self):
        seen = []
        srv = RoutingHTTPServer(
            self.routes(), port=0,
            observer=lambda *args: seen.append(args)).start()
        try:
            get(f"{srv.base_url}/things/42")
            with pytest.raises(urllib.error.HTTPError):
                get(f"{srv.base_url}/boom")
        finally:
            srv.close()
        assert [(route, method, status) for route, method, status, _ in
                seen] == [("/things/{id}", "GET", 200), ("/boom", "GET", 418)]
        assert all(dur >= 0 for *_rest, dur in seen)


class TestShutdown:
    def test_close_joins_thread_and_releases_the_port(self):
        """The shutdown satellite: after close() the serve thread is
        gone and the exact port is immediately rebindable — no
        dangling-port CI flakes."""
        import threading

        srv = MetricsServer(registry=MetricsRegistry(), port=0).start()
        port = srv.port
        thread_names = lambda: {t.name for t in threading.enumerate()}  # noqa: E731
        assert f"repro-httpd-{port}" in thread_names()
        srv.close()
        assert f"repro-httpd-{port}" not in thread_names()
        rebound = socket.socket()
        try:
            rebound.bind(("127.0.0.1", port))  # raises if port leaked
        finally:
            rebound.close()

    def test_close_before_start_is_safe(self):
        srv = MetricsServer(registry=MetricsRegistry(), port=0)
        srv.close()
        assert srv.closed

    def test_start_after_close_raises(self):
        srv = MetricsServer(registry=MetricsRegistry(), port=0)
        srv.close()
        with pytest.raises(RuntimeError, match="closed"):
            srv.start()

    def test_requests_fail_cleanly_after_close(self):
        srv = MetricsServer(registry=MetricsRegistry(), port=0).start()
        url = srv.url
        srv.close()
        with pytest.raises(urllib.error.URLError):
            urllib.request.urlopen(url, timeout=2)


class TestPreregisteredFamilies:
    def test_preregistered_families_visible_before_any_activity(self):
        """A scrape right after monitor startup must already show every
        monitor-relevant family (at zero), including the diagnostics
        counters this PR adds — no 'absent vs zero' ambiguity."""
        from repro.obs import schema
        from repro.obs.alerts import DEFAULT_RULES, AlertEngine, parse_rules

        registry = MetricsRegistry()
        schema.preregister(registry)
        AlertEngine(parse_rules(DEFAULT_RULES), registry=registry)
        srv = MetricsServer(registry=registry, port=0).start()
        try:
            _, _, body = get(srv.url)
        finally:
            srv.close()
        text = body.decode()
        for family in ("repro_streaming_fallbacks_total",
                       "repro_windows_dropped_total",
                       "repro_watchdog_stalls_total",
                       "repro_pool_breaks_total",
                       "repro_alerts_fired_total"):
            assert f"# TYPE {family} counter" in text, family


class TestConcurrentScrapes:
    def test_parallel_scrapes_all_succeed(self, server):
        import threading

        results = []
        errors = []

        def scrape():
            try:
                status, headers, body = get(server.url)
                results.append((status, body))
            except Exception as exc:  # noqa: BLE001 - collected for assert
                errors.append(exc)

        threads = [threading.Thread(target=scrape) for _ in range(8)]
        for t in threads:
            t.start()
        for t in threads:
            t.join(timeout=10)
        assert not errors
        assert len(results) == 8
        bodies = {body for _, body in results}
        assert all(status == 200 for status, _ in results)
        assert len(bodies) == 1  # registry unchanged: identical scrapes
