"""Tests for the HTTP metrics scrape endpoint."""

import json
import urllib.error
import urllib.request

import pytest

from repro.obs.httpd import MetricsServer
from repro.obs.metrics import MetricsRegistry


@pytest.fixture
def server():
    registry = MetricsRegistry()
    registry.describe("repro_windows_total", "Windows analysed.")
    registry.inc("repro_windows_total", 4.0)
    registry.observe("repro_span_seconds", 0.02, name="em.fit")
    srv = MetricsServer(registry=registry, port=0).start()
    yield srv
    srv.close()


def get(url):
    with urllib.request.urlopen(url, timeout=5) as response:
        return response.status, response.headers, response.read()


class TestMetricsServer:
    def test_ephemeral_port_is_bound_and_in_url(self, server):
        assert server.port > 0
        assert server.url == f"http://127.0.0.1:{server.port}/metrics"

    def test_metrics_endpoint_serves_prometheus_text(self, server):
        status, headers, body = get(server.url)
        assert status == 200
        assert headers["Content-Type"].startswith("text/plain")
        text = body.decode()
        assert "# TYPE repro_windows_total counter" in text
        assert "repro_windows_total 4" in text
        assert 'repro_span_seconds_bucket{name="em.fit",le="+Inf"} 1' in text

    def test_json_endpoint(self, server):
        base = server.url.rsplit("/", 1)[0]
        status, headers, body = get(f"{base}/metrics.json")
        assert status == 200
        assert headers["Content-Type"] == "application/json"
        payload = json.loads(body)
        assert payload["counters"]["repro_windows_total"][0]["value"] == 4.0

    def test_healthz(self, server):
        base = server.url.rsplit("/", 1)[0]
        status, _, body = get(f"{base}/healthz")
        assert status == 200
        assert body == b"ok\n"

    def test_unknown_path_is_404(self, server):
        base = server.url.rsplit("/", 1)[0]
        with pytest.raises(urllib.error.HTTPError) as excinfo:
            get(f"{base}/nope")
        assert excinfo.value.code == 404

    def test_scrape_reflects_live_updates(self):
        registry = MetricsRegistry()
        srv = MetricsServer(registry=registry, port=0).start()
        try:
            registry.inc("repro_windows_total")
            _, _, body = get(srv.url)
            assert "repro_windows_total 1" in body.decode()
            registry.inc("repro_windows_total")
            _, _, body = get(srv.url)
            assert "repro_windows_total 2" in body.decode()
        finally:
            srv.close()

    def test_close_is_idempotent(self):
        srv = MetricsServer(registry=MetricsRegistry(), port=0).start()
        srv.close()
        srv.close()


class TestPreregisteredFamilies:
    def test_preregistered_families_visible_before_any_activity(self):
        """A scrape right after monitor startup must already show every
        monitor-relevant family (at zero), including the diagnostics
        counters this PR adds — no 'absent vs zero' ambiguity."""
        from repro.obs import schema
        from repro.obs.alerts import DEFAULT_RULES, AlertEngine, parse_rules

        registry = MetricsRegistry()
        schema.preregister(registry)
        AlertEngine(parse_rules(DEFAULT_RULES), registry=registry)
        srv = MetricsServer(registry=registry, port=0).start()
        try:
            _, _, body = get(srv.url)
        finally:
            srv.close()
        text = body.decode()
        for family in ("repro_streaming_fallbacks_total",
                       "repro_windows_dropped_total",
                       "repro_watchdog_stalls_total",
                       "repro_pool_breaks_total",
                       "repro_alerts_fired_total"):
            assert f"# TYPE {family} counter" in text, family


class TestConcurrentScrapes:
    def test_parallel_scrapes_all_succeed(self, server):
        import threading

        results = []
        errors = []

        def scrape():
            try:
                status, headers, body = get(server.url)
                results.append((status, body))
            except Exception as exc:  # noqa: BLE001 - collected for assert
                errors.append(exc)

        threads = [threading.Thread(target=scrape) for _ in range(8)]
        for t in threads:
            t.start()
        for t in threads:
            t.join(timeout=10)
        assert not errors
        assert len(results) == 8
        bodies = {body for _, body in results}
        assert all(status == 200 for status, _ in results)
        assert len(bodies) == 1  # registry unchanged: identical scrapes
