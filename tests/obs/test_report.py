"""Tests for bench diffing and the single-file HTML dashboard."""

import json

import pytest

from repro.obs.report import (
    collect_report_data,
    diff_bench,
    generate_report,
    load_bench,
)

BASE_BENCH = {
    "scale": "quick",
    "window": 1500,
    "n_windows": 11,
    "warm_window_seconds": 0.8,
    "cold_window_seconds": 4.6,
    "warm_speedup": 6.0,
    "throughput_multi_jobs": 700.0,
    "telemetry": {"disabled_overhead_fraction": 1e-6},
}


class TestDiffBench:
    def test_identical_reports_have_no_findings(self):
        diff = diff_bench(BASE_BENCH, dict(BASE_BENCH), tolerance=0.25)
        assert diff["regressions"] == [] and diff["improvements"] == []
        assert diff["checked"] >= 4

    def test_slowed_timing_is_a_regression(self):
        current = json.loads(json.dumps(BASE_BENCH))
        current["warm_window_seconds"] = 1.6  # 2x slower
        diff = diff_bench(BASE_BENCH, current, tolerance=0.25)
        (reg,) = diff["regressions"]
        assert reg["key"] == "warm_window_seconds"
        assert reg["direction"] == "lower"
        assert reg["change"] == pytest.approx(1.0)

    def test_dropped_speedup_and_throughput_are_regressions(self):
        current = json.loads(json.dumps(BASE_BENCH))
        current["warm_speedup"] = 2.0
        current["throughput_multi_jobs"] = 300.0
        diff = diff_bench(BASE_BENCH, current, tolerance=0.25)
        assert {r["key"] for r in diff["regressions"]} == {
            "warm_speedup", "throughput_multi_jobs"}

    def test_faster_timing_is_an_improvement_not_a_regression(self):
        current = json.loads(json.dumps(BASE_BENCH))
        current["cold_window_seconds"] = 2.0
        diff = diff_bench(BASE_BENCH, current, tolerance=0.25)
        assert diff["regressions"] == []
        assert [i["key"] for i in diff["improvements"]] == [
            "cold_window_seconds"]

    def test_config_echo_keys_are_not_directional(self):
        current = json.loads(json.dumps(BASE_BENCH))
        current["window"] = 6000  # config change, not a regression
        current["n_windows"] = 2
        diff = diff_bench(BASE_BENCH, current, tolerance=0.25)
        assert diff["regressions"] == [] and diff["improvements"] == []

    def test_nested_keys_are_dotted(self):
        current = json.loads(json.dumps(BASE_BENCH))
        current["telemetry"]["disabled_overhead_fraction"] = 1.0
        diff = diff_bench(BASE_BENCH, current, tolerance=0.25)
        (reg,) = diff["regressions"]
        assert reg["key"] == "telemetry.disabled_overhead_fraction"

    def test_within_tolerance_changes_pass(self):
        current = json.loads(json.dumps(BASE_BENCH))
        current["warm_window_seconds"] = 0.9  # +12.5% < 25%
        diff = diff_bench(BASE_BENCH, current, tolerance=0.25)
        assert diff["regressions"] == []

    def test_negative_tolerance_rejected(self):
        with pytest.raises(ValueError):
            diff_bench(BASE_BENCH, BASE_BENCH, tolerance=-0.1)


def synthetic_telemetry(path):
    events = [
        {"ts": 1.0, "wall": 1.0, "pid": 7, "kind": "run.manifest",
         "run_id": "abc123def456", "command": "monitor",
         "manifest_path": None,
         "manifest": {"run_id": "abc123def456", "command": "monitor",
                      "seeds": {"em": 0}, "python": "3.12.0",
                      "git_sha": "f" * 40,
                      "packages": {"repro": "0.5", "numpy": "2.0"}}},
        {"ts": 1.1, "wall": 1.1, "pid": 7, "kind": "span",
         "name": "em.fit", "span": "1-1", "parent": None, "dur_ms": 41.0},
        {"ts": 1.2, "wall": 1.2, "pid": 7, "kind": "em.restart",
         "model": "mmhd", "restart": 0, "n_iter": 9, "converged": True,
         "loglik": -120.5, "logliks": [-160.0, -130.0, -120.5]},
        {"ts": 1.3, "wall": 1.3, "pid": 7, "kind": "em.restart",
         "model": "mmhd", "restart": 1, "n_iter": 9, "converged": True,
         "loglik": -118.0, "logliks": [-150.0, -118.0]},
        {"ts": 2.2, "wall": 2.2, "pid": 7, "kind": "alert.fired",
         "rule": "likelihood-collapse-burst", "severity": "fatal",
         "value": 0.8, "threshold": 0.3, "expr": "…"},
        {"ts": 2.4, "wall": 2.4, "pid": 7, "kind": "alert.resolved",
         "rule": "likelihood-collapse-burst", "value": 0.0,
         "threshold": 0.3},
        {"ts": 2.5, "wall": 2.5, "pid": 7, "kind": "watchdog.stall",
         "idle_seconds": 12.0, "timeout": 10.0,
         "ring": [{"kind": "span"}]},
        {"ts": 2.6, "wall": 2.6, "pid": 7, "kind": "profile.phase",
         "phase": "window.fit", "calls": 3, "total_ms": 120.0,
         "top": [{"func": "em.py:10(step)", "ncalls": 12,
                  "cum_ms": 100.0}]},
        {"ts": 2.7, "wall": 2.7, "pid": 7, "kind": "pool.broken",
         "n_workers": 4, "n_tasks": 8},
    ]
    for i, verdict in enumerate(["none", "weak", "strong", "strong"]):
        events.append(
            {"ts": 3.0 + i, "wall": 3.0 + i, "pid": 7, "kind": "window",
             "path": "demo", "window": i, "status": "ok",
             "verdict": verdict, "stable_verdict": verdict,
             "changed": i == 2, "lag_ms": 10.0 * (i + 1)})
    events.append(
        {"ts": 9.0, "wall": 9.0, "pid": 7, "kind": "window",
         "path": "demo", "window": 4, "status": "skipped",
         "reason": "no-losses", "verdict": None, "stable_verdict": "strong",
         "changed": False, "lag_ms": None})
    lines = [json.dumps(e) for e in events]
    lines.insert(3, '{"kind": "span", "name": "torn')   # torn tail
    lines.insert(5, "[1, 2, 3]")                        # non-dict JSON
    path.write_text("\n".join(lines) + "\n", encoding="utf-8")
    return events


class TestGenerateReport:
    def make_benches(self, tmp_path, slow=True):
        baseline_dir = tmp_path / "baseline"
        baseline_dir.mkdir()
        (baseline_dir / "BENCH_x.json").write_text(json.dumps(BASE_BENCH))
        current = json.loads(json.dumps(BASE_BENCH))
        if slow:
            current["warm_window_seconds"] = 2.4  # 3x slower
        bench_path = tmp_path / "BENCH_x.json"
        bench_path.write_text(json.dumps(current))
        return bench_path, baseline_dir

    def test_single_file_html_with_all_sections(self, tmp_path):
        events_path = tmp_path / "telemetry.jsonl"
        synthetic_telemetry(events_path)
        bench_path, baseline_dir = self.make_benches(tmp_path)
        out = generate_report(
            [events_path], [bench_path], baseline_dir=baseline_dir,
            tolerance=0.25, out=tmp_path / "report.html", title="test run",
        )
        html_text = out.read_text(encoding="utf-8")
        # self-contained: no scripts, no external fetches of any kind
        assert "<script" not in html_text
        assert "src=" not in html_text
        assert "http://" not in html_text and "https://" not in html_text
        assert "@import" not in html_text
        # every dashboard section rendered
        for needle in ("Provenance", "Spans", "EM restarts",
                       "Monitored paths", "Alerts",
                       "Watchdog &amp; pool health", "Profile",
                       "Benchmarks"):
            assert needle in html_text, needle
        assert "abc123def456" in html_text          # manifest run id
        assert "em.fit" in html_text                # span table
        assert "likelihood-collapse-burst" in html_text
        assert "window.fit" in html_text            # profile table
        assert "<svg" in html_text and "<polyline" in html_text
        assert "strong DCL" in html_text            # verdict legend labels
        assert "prefers-color-scheme: dark" in html_text

    def test_slowed_bench_is_flagged(self, tmp_path):
        events_path = tmp_path / "telemetry.jsonl"
        synthetic_telemetry(events_path)
        bench_path, baseline_dir = self.make_benches(tmp_path, slow=True)
        data = collect_report_data(
            [events_path], [bench_path], baseline_dir=baseline_dir,
            tolerance=0.25)
        assert data["n_regressions"] == 1
        assert data["malformed"] == 2
        out = generate_report(out=tmp_path / "r.html", data=data)
        html_text = out.read_text(encoding="utf-8")
        assert "regression" in html_text
        assert "warm_window_seconds" in html_text

    def test_unslowed_bench_passes(self, tmp_path):
        bench_path, baseline_dir = self.make_benches(tmp_path, slow=False)
        data = collect_report_data([], [bench_path],
                                   baseline_dir=baseline_dir)
        assert data["n_regressions"] == 0

    def test_report_without_inputs_still_renders(self, tmp_path):
        out = generate_report(out=tmp_path / "empty.html")
        text = out.read_text(encoding="utf-8")
        assert "no run.manifest events" in text
        assert "no bench reports given" in text

    def test_load_bench_reads_json(self, tmp_path):
        path = tmp_path / "b.json"
        path.write_text(json.dumps(BASE_BENCH))
        assert load_bench(path)["scale"] == "quick"

    def test_collect_groups_windows_by_path(self, tmp_path):
        events_path = tmp_path / "telemetry.jsonl"
        synthetic_telemetry(events_path)
        data = collect_report_data([events_path])
        assert set(data["windows_by_path"]) == {"demo"}
        assert len(data["windows_by_path"]["demo"]) == 5
        assert data["restart_logliks"] == [-120.5, -118.0]
        assert len(data["alerts"]) == 2
        assert len(data["stalls"]) == 1
        assert len(data["pool_breaks"]) == 1
        assert data["summary"]["alerts"]["fired"] == 1
        assert data["summary"]["stalls"] == 1
