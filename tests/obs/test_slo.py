"""Declarative SLOs: parsing, burn-rate math, compiled alert rules."""

import pytest

from repro.obs.alerts import AlertEngine
from repro.obs.metrics import MetricsRegistry
from repro.obs.slo import DEFAULT_SLOS, SLO, SLOEvaluator, parse_slos


class TestParsing:
    def test_default_slos_parse(self):
        slos = parse_slos(DEFAULT_SLOS)
        assert [s.name for s in slos] == ["verdict-freshness", "api-latency"]
        fresh = slos[0]
        assert fresh.quantile == 95.0
        assert fresh.metric == "repro_record_to_verdict_seconds"
        assert fresh.threshold == 2.0
        assert fresh.window == 300.0
        assert fresh.budget == pytest.approx(0.05)
        assert fresh.severity == "warn"

    def test_ms_threshold_and_hour_window(self):
        (slo,) = parse_slos("api: p99 lat_seconds < 250ms over 1h fatal")
        assert slo.threshold == pytest.approx(0.25)
        assert slo.window == 3600.0
        assert slo.severity == "fatal"
        # budget defaults to (100 - q)%
        assert slo.budget == pytest.approx(0.01)

    def test_label_matchers(self):
        (slo,) = parse_slos(
            'q: p50 repro_trace_stage_seconds{stage=queue} < 50ms over 5m')
        assert slo.labels == {"stage": "queue"}

    def test_comments_and_blanks_are_skipped(self):
        assert parse_slos("# nothing\n\n   \n") == []

    def test_bad_line_raises_with_line_number(self):
        with pytest.raises(ValueError, match="SLO line 1"):
            parse_slos("not an slo")

    def test_duplicate_names_rejected(self):
        text = ("a: p95 m < 1s over 5m\n"
                "a: p99 m < 2s over 5m\n")
        with pytest.raises(ValueError, match="duplicate"):
            parse_slos(text)

    def test_describe_round_trips_through_parser(self):
        for slo in parse_slos(DEFAULT_SLOS):
            (reparsed,) = parse_slos(slo.describe())
            assert reparsed.describe() == slo.describe()

    def test_constructor_validation(self):
        with pytest.raises(ValueError, match="quantile"):
            SLO("x", 0.0, "m", 1.0, 60.0, 0.05)
        with pytest.raises(ValueError, match="budget"):
            SLO("x", 95.0, "m", 1.0, 60.0, 0.0)
        with pytest.raises(ValueError, match="severity"):
            SLO("x", 95.0, "m", 1.0, 60.0, 0.05, severity="page")


class TestCompiledRules:
    def test_rule_watches_the_min_burn_gauge(self):
        (slo,) = parse_slos("fresh: p95 m < 1s over 5m budget 10% fatal")
        rule = slo.alert_rule()
        assert rule.name == "slo-burn-fresh"
        assert rule.metric == "repro_slo_burn_rate_min"
        assert rule.labels == {"slo": "fresh"}
        assert rule.threshold == 1.0
        assert rule.severity == "fatal"

    def test_breach_fires_through_the_alert_engine(self):
        registry = MetricsRegistry()
        (slo,) = parse_slos(
            "fresh: p95 lat_seconds < 1s over 60s budget 10%")
        evaluator = SLOEvaluator([slo], registry=registry)
        engine = AlertEngine(evaluator.alert_rules(), registry=registry)
        # Every observation is bad -> burn = 1/0.1 = 10 in both windows.
        evaluator.evaluate(now=0.0)
        for step in range(1, 4):
            registry.observe("lat_seconds", 5.0)
            evaluator.evaluate(now=float(step))
            engine.evaluate(now=float(step))
        assert "slo-burn-fresh" in engine.active_alerts()


def _evaluator(text="fresh: p95 lat_seconds < 1s over 120s budget 50%"):
    registry = MetricsRegistry()
    (slo,) = parse_slos(text)
    return SLOEvaluator([slo], registry=registry), registry


class TestEvaluator:
    def test_no_traffic_means_zero_burn(self):
        evaluator, _ = _evaluator()
        status = evaluator.evaluate(now=0.0)["fresh"]
        assert status["burn_fast"] == 0.0
        assert status["burn_slow"] == 0.0
        assert status["budget_remaining"] == 1.0
        assert not status["breaching"]

    def test_all_good_traffic_keeps_budget_full(self):
        evaluator, registry = _evaluator()
        evaluator.evaluate(now=0.0)
        for step in range(1, 4):
            registry.observe("lat_seconds", 0.01)
            status = evaluator.evaluate(now=float(step))["fresh"]
        assert status["bad"] == 0.0
        assert status["budget_remaining"] == 1.0
        assert not status["breaching"]

    def test_bad_fraction_drives_burn_rate(self):
        # Half the traffic is bad against a 50% budget: burn = 1.0
        # exactly — on the edge, not breaching.
        evaluator, registry = _evaluator()
        evaluator.evaluate(now=0.0)
        registry.observe("lat_seconds", 0.01)
        registry.observe("lat_seconds", 9.0)
        status = evaluator.evaluate(now=1.0)["fresh"]
        assert status["bad_fraction"] == pytest.approx(0.5)
        assert status["burn_slow"] == pytest.approx(1.0)
        assert not status["breaching"]

    def test_all_bad_traffic_breaches(self):
        evaluator, registry = _evaluator()
        evaluator.evaluate(now=0.0)
        registry.observe("lat_seconds", 9.0)
        status = evaluator.evaluate(now=1.0)["fresh"]
        assert status["burn_slow"] == pytest.approx(2.0)
        assert status["breaching"]
        assert status["budget_remaining"] == pytest.approx(-1.0)

    def test_burn_gauges_are_published(self):
        evaluator, registry = _evaluator()
        evaluator.evaluate(now=0.0)
        registry.observe("lat_seconds", 9.0)
        evaluator.evaluate(now=1.0)
        gauges = registry.snapshot()["gauges"]
        assert gauges[("repro_slo_burn_rate_min",
                       (("slo", "fresh"),))] == pytest.approx(2.0)
        assert gauges[("repro_slo_burn_rate",
                       (("slo", "fresh"),
                        ("window", "fast")))] == pytest.approx(2.0)

    def test_old_samples_age_out_of_the_window(self):
        evaluator, registry = _evaluator(
            "fresh: p95 lat_seconds < 1s over 60s budget 50%")
        evaluator.evaluate(now=0.0)
        registry.observe("lat_seconds", 9.0)
        evaluator.evaluate(now=1.0)
        assert evaluator.evaluate(now=1.5)["fresh"]["breaching"]
        # 100s later the bad sample has left the 60s window.
        status = evaluator.evaluate(now=101.0)["fresh"]
        assert status["burn_slow"] == 0.0
        assert not status["breaching"]

    def test_current_quantile_is_reported(self):
        evaluator, registry = _evaluator()
        for _ in range(20):
            registry.observe("lat_seconds", 0.003)
        status = evaluator.evaluate(now=0.0)["fresh"]
        # All observations sit in the (0.0025, 0.005] default bucket;
        # interpolation keeps the estimate inside it.
        assert 0.0025 < status["current_quantile"] <= 0.005

    def test_status_before_any_evaluation_is_quiet(self):
        evaluator, _ = _evaluator()
        (row,) = evaluator.status()
        assert row["slo"] == "fresh"
        assert not row["breaching"]

    def test_label_matchers_select_series(self):
        registry = MetricsRegistry()
        (slo,) = parse_slos(
            "q: p95 stage_seconds{stage=queue} < 1s over 60s budget 50%")
        evaluator = SLOEvaluator([slo], registry=registry)
        evaluator.evaluate(now=0.0)
        registry.observe("stage_seconds", 9.0, stage="fit")  # ignored
        registry.observe("stage_seconds", 9.0, stage="queue")
        status = evaluator.evaluate(now=1.0)["q"]
        assert status["bad"] == 1.0

    def test_emits_slo_status_events(self):
        from repro import obs

        obs.enable()
        events = []
        obs.bus().add_tap(lambda e: events.append(e))
        evaluator, _ = _evaluator()
        evaluator.evaluate(now=0.0)
        kinds = [e["kind"] for e in events]
        assert kinds == ["slo.status"]
        assert events[0]["slo"] == "fresh"
