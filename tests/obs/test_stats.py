"""Tests for the ``repro stats`` summarizer against a golden fixture."""

from pathlib import Path

import pytest

from repro.obs.schema import validate_event
from repro.obs.stats import format_summary, summarize_events

GOLDEN = Path(__file__).parent / "data" / "telemetry_golden.jsonl"

GOLDEN_TEXT = """\
events: 23 (1 unparseable)
  by kind: em.fit=1, em.restart=2, model.health=3, service.coarsen=1, \
service.path=1, service.round=2, service.shed=1, slo.status=1, span=3, \
streaming.fit=3, trace.window=2, window=3
spans (total time, by name):
  em.fit: 2x, total 200.0 ms, mean 100.0 ms, max 120.0 ms
  streaming.fit: 1x, total 5.5 ms, mean 5.5 ms, max 5.5 ms
slowest spans:
  120.0 ms  em.fit  [1-1]
  80.0 ms  em.fit  [1-2]
  5.5 ms  streaming.fit  [1-3]
streaming fits: 3 (warm 2, cold 1, warm rate 67%)
  fallbacks: non-monotone=1 (rate 33.3%)
windows: 3 (analyzed 2, skipped 1)
  skip reasons: degenerate=1
  verdicts: strong=2
  stable-verdict flips: 1
EM: 1 fits, 2 restarts (1 hit max_iter, 1 non-monotone)
  max restart loglik dispersion: 0.5000
service: 2 rounds, ingested 2000, dropped 5, windows 3, max backlog 7
  backpressure: shed 4 windows; stride coarsen=1
  path actions: register=1
record-to-verdict traces: 2
  ingest: mean 1000.0 ms, max 1200.0 ms (2x)
  queue: mean 20.0 ms, max 30.0 ms (2x)
  fit: mean 60.0 ms, max 70.0 ms (2x)
  publish: mean 2.0 ms, max 3.0 ms (2x)
  total: mean 90.0 ms, max 110.0 ms (2x)
SLO evaluations: 1 (1 breaching: verdict-freshness=1)
model health: 3 reports (1 without evidence)
  p0: min 0.31, mean 0.64 (2x)
  drift alarms: cusum=1
  violated assumptions: insufficient-evidence=1, loglik-shift=1"""


class TestGoldenFixture:
    def test_fixture_events_are_schema_valid(self):
        import json

        lines = GOLDEN.read_text().splitlines()
        parsed = []
        for line in lines:
            try:
                parsed.append(json.loads(line))
            except json.JSONDecodeError:
                pass
        assert len(parsed) == 23  # the last line is deliberately torn
        for event in parsed:
            assert validate_event(event) == [], event

    def test_summary_numbers(self):
        summary = summarize_events(GOLDEN)
        assert summary["n_events"] == 23
        assert summary["n_unparseable"] == 1
        assert summary["by_kind"] == {
            "em.fit": 1, "em.restart": 2, "model.health": 3,
            "service.coarsen": 1,
            "service.path": 1, "service.round": 2, "service.shed": 1,
            "slo.status": 1, "span": 3, "streaming.fit": 3,
            "trace.window": 2, "window": 3,
        }
        assert summary["spans"]["by_name"]["em.fit"] == {
            "count": 2, "total_ms": 200.0, "mean_ms": 100.0, "max_ms": 120.0,
        }
        assert [s["dur_ms"] for s in summary["spans"]["slowest"]] == [
            120.0, 80.0, 5.5,
        ]
        assert summary["streaming"] == {
            "fits": 3, "warm": 2, "cold": 1,
            "warm_rate": pytest.approx(0.6667),
            "fallbacks": {"non-monotone": 1},
            "fallback_rate": pytest.approx(0.3333),
        }
        assert summary["windows"] == {
            "total": 3, "analyzed": 2, "skipped": 1,
            "skip_reasons": {"degenerate": 1},
            "verdicts": {"strong": 2},
            "verdict_flips": 1,
        }
        assert summary["em"] == {
            "fits": 1, "restarts": 2, "nonconverged_restarts": 1,
            "nonmonotone_restarts": 1,
            "max_loglik_dispersion": 0.5,
        }
        assert summary["service"] == {
            "rounds": 2, "ingested": 2000, "dropped": 5, "windows": 3,
            "max_backlog": 7, "shed_windows": 4,
            "coarsen": {"coarsen": 1},
            "path_actions": {"register": 1},
        }
        assert summary["traces"]["count"] == 2
        assert summary["traces"]["stages"]["queue"] == {
            "count": 2, "mean_ms": 20.0, "max_ms": 30.0,
        }
        assert summary["slo"] == {
            "evaluations": 1, "breaches": 1,
            "breaching_by_slo": {"verdict-freshness": 1},
        }
        assert summary["model_health"] == {
            "reports": 3, "no_evidence": 1,
            "by_path": {"p0": {"count": 2, "min": 0.31, "mean": 0.64}},
            "drift_alarms": {"cusum": 1},
            "reasons": {"insufficient-evidence": 1, "loglik-shift": 1},
        }

    def test_formatted_output_is_stable(self):
        assert format_summary(summarize_events(GOLDEN)) == GOLDEN_TEXT

    def test_top_limits_slowest_list(self):
        summary = summarize_events(GOLDEN, top=1)
        assert [s["dur_ms"] for s in summary["spans"]["slowest"]] == [120.0]


class TestEdgeCases:
    def test_accepts_an_iterable_of_lines(self):
        lines = ['{"ts": 1, "wall": 1, "pid": 1, "kind": "window", '
                 '"status": "ok", "verdict": "weak", "changed": false}']
        summary = summarize_events(lines)
        assert summary["windows"]["verdicts"] == {"weak": 1}

    def test_empty_file_summarizes_to_zeroes(self, tmp_path):
        empty = tmp_path / "empty.jsonl"
        empty.write_text("")
        summary = summarize_events(empty)
        assert summary["n_events"] == 0
        assert summary["streaming"]["warm_rate"] is None
        assert summary["em"]["max_loglik_dispersion"] is None
        assert format_summary(summary) == "events: 0"

    def test_blank_lines_are_ignored(self):
        summary = summarize_events(["", "  ", "\n"])
        assert summary["n_events"] == 0
        assert summary["n_unparseable"] == 0


class TestMalformedLines:
    """The satellite fix: torn/corrupt JSONL must be skipped and counted,
    never crash the summarizer."""

    def test_non_dict_json_lines_are_malformed_not_fatal(self):
        lines = [
            '{"kind": "window", "status": "ok", "verdict": "none"}',
            "42",            # valid JSON, not an event object
            "[1, 2, 3]",     # likewise
            '"a string"',
            '{"kind": "span", "name": "x", "dur_ms": 1.0}',
        ]
        summary = summarize_events(lines)
        assert summary["n_events"] == 2
        assert summary["malformed_lines"] == 3
        assert summary["n_unparseable"] == 3  # legacy alias stays in sync

    def test_torn_tail_line_is_counted(self):
        lines = [
            '{"kind": "span", "name": "x", "dur_ms": 1.0}',
            '{"kind": "span", "name": "y", "dur_',  # writer died mid-line
        ]
        summary = summarize_events(lines)
        assert summary["n_events"] == 1
        assert summary["malformed_lines"] == 1

    def test_corrupt_bytes_in_file_are_tolerated(self, tmp_path):
        path = tmp_path / "events.jsonl"
        good = b'{"kind": "window", "status": "ok", "verdict": "weak"}\n'
        path.write_bytes(good + b"\xff\xfe\x00garbage\n" + good)
        summary = summarize_events(path)
        assert summary["n_events"] == 2
        assert summary["malformed_lines"] == 1
        assert summary["windows"]["analyzed"] == 2

    def test_already_parsed_dicts_pass_through(self):
        events = [{"kind": "window", "status": "ok", "verdict": "strong"}]
        summary = summarize_events(events)
        assert summary["n_events"] == 1
        assert summary["windows"]["verdicts"] == {"strong": 1}

    def test_malformed_count_not_rendered_when_zero(self):
        summary = summarize_events(["{\"kind\": \"span\", \"name\": \"x\","
                                    " \"dur_ms\": 1.0}"])
        assert "unparseable" not in format_summary(summary)


class TestAlertAndStallSummaries:
    def test_alert_and_stall_events_are_counted_and_rendered(self):
        lines = [
            '{"kind": "alert.fired", "rule": "burst", "severity": "fatal"}',
            '{"kind": "alert.fired", "rule": "lag", "severity": "warn"}',
            '{"kind": "alert.resolved", "rule": "lag"}',
            '{"kind": "watchdog.stall", "idle_seconds": 9.0}',
        ]
        summary = summarize_events(lines)
        assert summary["alerts"] == {
            "fired": 2, "resolved": 1, "by_rule": {"burst": 1, "lag": 1}}
        assert summary["stalls"] == 1
        text = format_summary(summary)
        assert "alerts: 2 fired, 1 resolved" in text
        assert "watchdog stalls: 1" in text

    def test_quiet_runs_render_no_alert_lines(self):
        summary = summarize_events(
            ['{"kind": "span", "name": "x", "dur_ms": 1.0}'])
        text = format_summary(summary)
        assert "alerts:" not in text
        assert "stalls" not in text


class TestServiceAndTraceSummaries:
    def test_service_rounds_aggregate(self):
        lines = [
            '{"kind": "service.round", "cycle": 1, "ingested": 10, '
            '"dropped": 1, "windows": 2, "backlog": 5, "dur_ms": 3.0}',
            '{"kind": "service.round", "cycle": 2, "ingested": 20, '
            '"dropped": 0, "windows": 0, "backlog": 1, "dur_ms": 2.0}',
        ]
        summary = summarize_events(lines)
        assert summary["service"]["rounds"] == 2
        assert summary["service"]["ingested"] == 30
        assert summary["service"]["max_backlog"] == 5
        assert "service: 2 rounds" in format_summary(summary)

    def test_trace_stage_aggregates_skip_missing_stages(self):
        lines = [
            '{"kind": "trace.window", "path": "p", "window": 0, '
            '"stages": {"ingest": 0.5, "total": 0.6}}',
            '{"kind": "trace.window", "path": "p", "window": 1, '
            '"stages": {"ingest": 1.5, "queue": 0.1, "total": 1.8}}',
        ]
        summary = summarize_events(lines)
        stages = summary["traces"]["stages"]
        assert stages["ingest"]["count"] == 2
        assert stages["ingest"]["mean_ms"] == 1000.0
        assert stages["queue"]["count"] == 1
        text = format_summary(summary)
        assert "record-to-verdict traces: 2" in text

    def test_non_breaching_slo_status_renders_zero_breaches(self):
        lines = [
            '{"kind": "slo.status", "slo": "x", "burn_fast": 0.1, '
            '"burn_slow": 0.2, "budget_remaining": 0.9, '
            '"breaching": false}',
        ]
        summary = summarize_events(lines)
        assert summary["slo"] == {"evaluations": 1, "breaches": 0,
                                  "breaching_by_slo": {}}
        assert "SLO evaluations: 1 (0 breaching)" in format_summary(summary)

    def test_quiet_runs_render_no_service_lines(self):
        summary = summarize_events(
            ['{"kind": "span", "name": "x", "dur_ms": 1.0}'])
        text = format_summary(summary)
        assert "service:" not in text
        assert "traces" not in text
        assert "SLO" not in text
