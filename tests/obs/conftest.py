"""Shared guards for telemetry tests.

Telemetry state is process-global; every test in this package runs
against a known-off, empty registry and leaves it that way.
"""

import pytest

from repro import obs
from repro.obs import health as health_mod
from repro.obs import trace as trace_mod


def _reset():
    obs.disable()
    trace_mod.disable_tracing()
    health_mod.disable_health()
    obs.registry().clear()
    bus = obs.bus()
    bus.n_emitted = 0
    bus.n_rotations = 0
    bus._taps = ()


@pytest.fixture(autouse=True)
def telemetry_reset():
    _reset()
    yield
    _reset()
