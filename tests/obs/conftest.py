"""Shared guards for telemetry tests.

Telemetry state is process-global; every test in this package runs
against a known-off, empty registry and leaves it that way.
"""

import pytest

from repro import obs


@pytest.fixture(autouse=True)
def telemetry_reset():
    obs.disable()
    obs.registry().clear()
    yield
    obs.disable()
    obs.registry().clear()
