"""Unit tests for the metrics registry, exporters, and snapshot merging."""

import json
import math

import pytest

from repro.obs.metrics import DEFAULT_BUCKETS, MetricsRegistry


def parse_prometheus(text):
    """Parse the text exposition format into {type: ..., samples: {...}}.

    A deliberately independent mini-parser: if the exporter drifts from
    the format, this fails rather than agreeing with the bug.
    """
    types = {}
    helps = {}
    samples = {}
    for line in text.splitlines():
        if not line:
            continue
        if line.startswith("# TYPE "):
            _, _, name, kind = line.split(" ", 3)
            types[name] = kind
            continue
        if line.startswith("# HELP "):
            _, _, name, help_text = line.split(" ", 3)
            helps[name] = help_text
            continue
        assert not line.startswith("#"), f"unknown comment line: {line!r}"
        name_labels, value = line.rsplit(" ", 1)
        samples[name_labels] = float(value.replace("+Inf", "inf"))
    return {"types": types, "helps": helps, "samples": samples}


class TestCounters:
    def test_inc_accumulates(self):
        reg = MetricsRegistry()
        reg.inc("c_total")
        reg.inc("c_total", 2.5)
        assert reg.counter_value("c_total") == pytest.approx(3.5)

    def test_labels_are_order_insensitive(self):
        reg = MetricsRegistry()
        reg.inc("c_total", 1.0, a="x", b="y")
        reg.inc("c_total", 1.0, b="y", a="x")
        assert reg.counter_value("c_total", a="x", b="y") == 2.0

    def test_label_values_are_stringified(self):
        reg = MetricsRegistry()
        reg.inc("c_total", 1.0, n=3)
        assert reg.counter_value("c_total", n="3") == 1.0

    def test_negative_increment_rejected(self):
        reg = MetricsRegistry()
        with pytest.raises(ValueError, match="only go up"):
            reg.inc("c_total", -1.0)

    def test_reserved_looking_label_names_pass_through(self):
        # `name` is positional-only in the API precisely so a label can
        # use it (span histograms are labelled name=<span name>).
        reg = MetricsRegistry()
        reg.inc("c_total", 1.0, name="em.fit")
        assert reg.counter_value("c_total", name="em.fit") == 1.0

    def test_unknown_counter_reads_zero(self):
        assert MetricsRegistry().counter_value("nope_total") == 0.0


class TestGauges:
    def test_last_write_wins(self):
        reg = MetricsRegistry()
        reg.set_gauge("g", 4)
        reg.set_gauge("g", 2)
        assert reg.gauge_value("g") == 2.0

    def test_unset_gauge_is_none(self):
        assert MetricsRegistry().gauge_value("g") is None


class TestHistograms:
    def test_bucketing_and_totals(self):
        reg = MetricsRegistry()
        reg.describe("h_seconds", "test", buckets=(0.1, 1.0))
        for value in (0.05, 0.5, 0.5, 5.0):
            reg.observe("h_seconds", value)
        assert reg.histogram_count("h_seconds") == 4
        snap = reg.snapshot()
        buckets, counts, total, count = snap["histograms"][("h_seconds", ())]
        assert buckets == (0.1, 1.0)
        assert counts == [1, 2, 1]  # <=0.1, <=1.0, +Inf
        assert total == pytest.approx(6.05)
        assert count == 4

    def test_default_buckets_cover_span_range(self):
        reg = MetricsRegistry()
        reg.observe("h_seconds", 0.0005)
        reg.observe("h_seconds", 29.0)
        snap = reg.snapshot()
        buckets, counts, _, _ = snap["histograms"][("h_seconds", ())]
        assert buckets == DEFAULT_BUCKETS
        assert counts[0] == 1  # sub-ms lands in the first bucket
        assert counts[-2] == 1  # 29 s fits under the 30 s edge
        assert counts[-1] == 0  # nothing overflowed to +Inf


class TestSnapshotDeltaMerge:
    def test_delta_contains_only_changes(self):
        reg = MetricsRegistry()
        reg.inc("a_total")
        reg.set_gauge("g", 1.0)
        before = reg.snapshot()
        reg.inc("b_total", 2.0)
        reg.observe("h_seconds", 0.2)
        delta = reg.delta(before)
        assert list(delta["counters"]) == [("b_total", ())]
        assert delta["gauges"] == {}  # unchanged gauge not carried
        assert list(delta["histograms"]) == [("h_seconds", ())]

    def test_merge_of_split_work_equals_inline_work(self):
        # The parallel_map contract: running tasks elsewhere and merging
        # their deltas in task order reproduces the single-process state.
        def run_task(reg, task_id):
            reg.inc("fits_total", 1.0, model="mmhd")
            reg.set_gauge("pending", float(task_id))
            reg.observe("dur_seconds", 0.1 * (task_id + 1))

        inline = MetricsRegistry()
        for task_id in range(4):
            run_task(inline, task_id)

        parent = MetricsRegistry()
        deltas = []
        for task_id in range(4):
            worker = MetricsRegistry()  # each task sees a fresh delta base
            before = worker.snapshot()
            run_task(worker, task_id)
            deltas.append(worker.delta(before))
        for delta in deltas:
            parent.merge(delta)

        assert parent.snapshot() == inline.snapshot()

    def test_gauge_merge_is_last_writer_in_task_order(self):
        parent = MetricsRegistry()
        for value in (3.0, 7.0):
            worker = MetricsRegistry()
            before = worker.snapshot()
            worker.set_gauge("pending", value)
            parent.merge(worker.delta(before))
        assert parent.gauge_value("pending") == 7.0

    def test_snapshot_is_picklable_and_json_safe_keys(self):
        import pickle

        reg = MetricsRegistry()
        reg.inc("a_total", 1.0, model="hmm")
        reg.observe("h_seconds", 0.3)
        blob = pickle.dumps(reg.snapshot())
        assert pickle.loads(blob) == reg.snapshot()


class TestExporters:
    def test_prometheus_round_trip(self):
        reg = MetricsRegistry()
        reg.describe("fits_total", "Fits run.")
        reg.inc("fits_total", 3.0, model="mmhd")
        reg.set_gauge("pending", 2.0)
        reg.describe("dur_seconds", "Durations.", buckets=(0.1, 1.0))
        reg.observe("dur_seconds", 0.05)
        reg.observe("dur_seconds", 0.5)

        parsed = parse_prometheus(reg.to_prometheus())
        assert parsed["types"] == {"fits_total": "counter",
                                   "pending": "gauge",
                                   "dur_seconds": "histogram"}
        assert parsed["helps"]["fits_total"] == "Fits run."
        samples = parsed["samples"]
        assert samples['fits_total{model="mmhd"}'] == 3.0
        assert samples["pending"] == 2.0
        # Histogram buckets are cumulative and end at +Inf.
        assert samples['dur_seconds_bucket{le="0.1"}'] == 1.0
        assert samples['dur_seconds_bucket{le="1"}'] == 2.0
        assert samples['dur_seconds_bucket{le="+Inf"}'] == 2.0
        assert samples["dur_seconds_sum"] == pytest.approx(0.55)
        assert samples["dur_seconds_count"] == 2.0

    def test_label_values_are_escaped(self):
        reg = MetricsRegistry()
        reg.inc("c_total", 1.0, reason='say "hi"\nback\\slash')
        text = reg.to_prometheus()
        assert '\\"hi\\"' in text
        assert "\\n" in text
        assert "\\\\slash" in text
        assert text.count("\n") == len(text.splitlines())

    def test_empty_registry_exports_empty(self):
        assert MetricsRegistry().to_prometheus() == ""

    def test_json_projection(self):
        reg = MetricsRegistry()
        reg.inc("fits_total", 2.0, model="hmm")
        reg.observe("dur_seconds", 0.2)
        out = json.loads(json.dumps(reg.to_json()))  # must be JSON-able
        assert out["counters"]["fits_total"] == [
            {"labels": {"model": "hmm"}, "value": 2.0}
        ]
        hist = out["histograms"]["dur_seconds"][0]
        assert hist["count"] == 1
        assert hist["sum"] == pytest.approx(0.2)
        assert len(hist["counts"]) == len(hist["buckets"]) + 1

    def test_infinity_formats_as_prometheus_inf(self):
        reg = MetricsRegistry()
        reg.set_gauge("g", math.inf)
        assert "g +Inf" in reg.to_prometheus()
