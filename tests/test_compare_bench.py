"""Tests for the standalone bench-comparison CLI used by CI."""

import importlib.util
import json
from pathlib import Path

import pytest

SCRIPT = Path(__file__).parents[1] / "benchmarks" / "compare_bench.py"

BASE = {
    "scale": "quick",
    "warm_window_seconds": 0.8,
    "warm_speedup": 6.0,
    "throughput_multi_jobs": 700.0,
}


@pytest.fixture(scope="module")
def compare_bench():
    spec = importlib.util.spec_from_file_location("compare_bench", SCRIPT)
    module = importlib.util.module_from_spec(spec)
    spec.loader.exec_module(module)
    return module


def write(path, data):
    path.write_text(json.dumps(data), encoding="utf-8")
    return path


class TestCompareBenchCLI:
    def test_identical_reports_exit_zero(self, compare_bench, tmp_path,
                                         capsys):
        baseline = write(tmp_path / "a.json", BASE)
        current = write(tmp_path / "b.json", BASE)
        rc = compare_bench.main([str(baseline), str(current)])
        assert rc == 0
        assert "no change beyond tolerance" in capsys.readouterr().out

    def test_regression_past_tolerance_exits_nonzero(self, compare_bench,
                                                     tmp_path, capsys):
        baseline = write(tmp_path / "a.json", BASE)
        slowed = dict(BASE, warm_window_seconds=2.4)
        current = write(tmp_path / "b.json", slowed)
        rc = compare_bench.main([str(baseline), str(current),
                                 "--tolerance", "0.25"])
        assert rc == 1
        out = capsys.readouterr().out
        assert "REGRESSION" in out
        assert "warm_window_seconds" in out

    def test_within_tolerance_passes(self, compare_bench, tmp_path):
        baseline = write(tmp_path / "a.json", BASE)
        current = write(tmp_path / "b.json",
                        dict(BASE, warm_window_seconds=0.9))
        assert compare_bench.main([str(baseline), str(current)]) == 0

    def test_improvement_exits_zero_and_is_reported(self, compare_bench,
                                                    tmp_path, capsys):
        baseline = write(tmp_path / "a.json", BASE)
        current = write(tmp_path / "b.json", dict(BASE, warm_speedup=12.0))
        rc = compare_bench.main([str(baseline), str(current)])
        assert rc == 0
        assert "improvement" in capsys.readouterr().out

    def test_json_output_is_machine_readable(self, compare_bench, tmp_path,
                                             capsys):
        baseline = write(tmp_path / "a.json", BASE)
        current = write(tmp_path / "b.json",
                        dict(BASE, warm_window_seconds=2.4))
        rc = compare_bench.main([str(baseline), str(current), "--json"])
        assert rc == 1
        payload = json.loads(capsys.readouterr().out)
        assert payload["regressions"][0]["key"] == "warm_window_seconds"
