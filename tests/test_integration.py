"""End-to-end integration tests: simulate -> infer -> test -> bound.

These are scaled-down versions of the paper's headline experiments; the
full-scale versions live in ``benchmarks/``.  Marked ``slow`` (run by
default, deselect with ``-m 'not slow'``).
"""

import numpy as np
import pytest

from repro.core import (
    IdentifyConfig,
    estimate_bound,
    ground_truth_distribution,
    identify,
    losspair_max_queuing_delay,
)
from repro.experiments import (
    no_dcl_scenario,
    run_scenario,
    strong_dcl_scenario,
    weak_dcl_scenario,
)
from repro.experiments.internet import (
    adsl_path_scenario,
    run_internet_experiment,
)
from repro.models.base import EMConfig

pytestmark = pytest.mark.slow

FAST_EM = EMConfig(max_iter=80, tol=5e-4)


class TestStrongDclPipeline:
    @pytest.fixture(scope="class")
    def result(self):
        return run_scenario(strong_dcl_scenario(1.0), seed=1, duration=120.0,
                            warmup=30.0, with_loss_pairs=True)

    def test_identification_accepts_strong(self, result):
        report = identify(result.trace, IdentifyConfig(em=FAST_EM))
        assert report.verdict == "strong"

    def test_model_matches_ground_truth(self, result):
        report = identify(result.trace, IdentifyConfig(em=FAST_EM))
        truth = ground_truth_distribution(result.trace, report.discretizer)
        assert report.distribution.total_variation(truth) < 0.1

    def test_bound_covers_and_is_tight(self, result):
        bound = estimate_bound(result.trace, "strong",
                               IdentifyConfig(em=FAST_EM), n_symbols=20)
        q_k = result.built.dominant_max_queuing_delay()
        # Upper bound, within ~15% slack (paper: within a few ms).
        assert q_k * 0.95 <= bound.seconds <= q_k * 1.25

    def test_losspair_estimate_close_for_strong_case(self, result):
        estimate = losspair_max_queuing_delay(result.losspair_trace)
        q_k = result.built.dominant_max_queuing_delay()
        assert estimate == pytest.approx(q_k, rel=0.15)


class TestWeakDclPipeline:
    @pytest.fixture(scope="class")
    def result(self):
        return run_scenario(weak_dcl_scenario((0.7, 0.2)), seed=1,
                            duration=150.0, warmup=30.0)

    def test_loss_split_matches_design(self, result):
        share = result.loss_share_of_dcl()
        assert 0.90 <= share < 1.0

    def test_weak_accepted_strong_rejected(self, result):
        report = identify(result.trace, IdentifyConfig(em=FAST_EM))
        assert report.verdict == "weak"
        assert not report.sdcl.accepted
        assert report.wdcl.accepted

    def test_tighter_beta0_rejected_on_ground_truth(self, result):
        # Paper Section VI-A2: with beta0 = 0.02 the hypothesis must be
        # rejected (the minor link holds more than 2% of the losses).
        # Asserted on the ground-truth distribution — the estimated Ĝ's
        # minor mass hovers around the 2% boundary on short traces, which
        # the paper-scale benchmark exercises instead.
        from repro.core import wdcl_test

        report = identify(result.trace, IdentifyConfig(em=FAST_EM))
        truth = ground_truth_distribution(result.trace, report.discretizer)
        assert not wdcl_test(truth, beta0=0.02, beta1=0.0).accepted
        # And the headline beta0 = 0.06 acceptance also holds on truth.
        assert wdcl_test(truth, beta0=0.06, beta1=0.0).accepted


class TestNoDclPipeline:
    def test_rejected(self):
        result = run_scenario(no_dcl_scenario((0.1, 0.2)), seed=1,
                              duration=150.0, warmup=30.0)
        report = identify(result.trace, IdentifyConfig(em=FAST_EM))
        assert report.verdict == "none"

    def test_ground_truth_is_bimodal(self):
        result = run_scenario(no_dcl_scenario((0.1, 0.2)), seed=2,
                              duration=150.0, warmup=30.0)
        report = identify(result.trace, IdentifyConfig(em=FAST_EM))
        truth = ground_truth_distribution(result.trace, report.discretizer)
        # Mass both at the bottom and at the top symbols.
        assert truth.pmf[0] > 0.1
        assert truth.pmf[-1] > 0.1


class TestInternetPipeline:
    def test_snu_path_rejects_after_clock_repair(self):
        run = run_internet_experiment(adsl_path_scenario("snu"), seed=1,
                                      duration=150.0, warmup=20.0)
        report = identify(run.repaired, IdentifyConfig(em=FAST_EM))
        assert not report.wdcl.accepted

    def test_ufpr_path_accepts_after_clock_repair(self):
        run = run_internet_experiment(adsl_path_scenario("ufpr"), seed=1,
                                      duration=150.0, warmup=20.0)
        report = identify(run.repaired, IdentifyConfig(em=FAST_EM))
        assert report.wdcl.accepted
        assert run.skew_error() < 5e-6
