"""Package-level smoke tests: public API surface."""

import repro


class TestPublicSurface:
    def test_version(self):
        assert repro.__version__

    def test_top_level_exports(self):
        for name in repro.__all__:
            assert getattr(repro, name) is not None

    def test_subpackage_exports_resolve(self):
        for module in (repro.core, repro.models, repro.netsim,
                       repro.measurement, repro.experiments):
            for name in module.__all__:
                assert getattr(module, name) is not None

    def test_identify_reachable_from_top_level(self):
        # repro.core.identify is rebound to the function by the package's
        # from-import; both spellings must reach the same callable.
        assert repro.identify is repro.core.identify
