"""Tests for the sliding-window assembler."""

import numpy as np
import pytest

from repro.streaming.windows import (
    ProbeWindow,
    SlidingWindowAssembler,
    iter_windows,
)


def push_all(assembler, records):
    windows = []
    for send_time, delay in records:
        window = assembler.push(send_time, delay)
        if window is not None:
            windows.append(window)
    return windows


def records(n, interval=0.02):
    return [(i * interval, 0.01 + i * 1e-4) for i in range(n)]


class TestGeometry:
    def test_overlapping_windows(self):
        assembler = SlidingWindowAssembler(window=10, hop=5)
        windows = push_all(assembler, records(25))
        assert [(w.start, w.stop) for w in windows] == [
            (0, 10), (5, 15), (10, 20), (15, 25),
        ]
        assert [w.index for w in windows] == [0, 1, 2, 3]
        assert all(len(w.observation.send_times) == 10 for w in windows)

    def test_hop_equal_to_window_tiles(self):
        assembler = SlidingWindowAssembler(window=10, hop=10)
        windows = push_all(assembler, records(30))
        assert [(w.start, w.stop) for w in windows] == [
            (0, 10), (10, 20), (20, 30),
        ]

    def test_window_contents_match_pushed_records(self):
        assembler = SlidingWindowAssembler(window=4, hop=2)
        recs = [(0.0, 0.1), (0.02, np.nan), (0.04, 0.3), (0.06, 0.4),
                (0.08, 0.5), (0.10, np.nan)]
        windows = push_all(assembler, recs)
        first = windows[0].observation
        np.testing.assert_allclose(first.send_times, [0.0, 0.02, 0.04, 0.06])
        assert np.isnan(first.delays[1])
        second = windows[1].observation
        np.testing.assert_allclose(second.send_times, [0.04, 0.06, 0.08, 0.10])
        assert np.isnan(second.delays[-1])

    def test_default_hop_is_half_window(self):
        assert SlidingWindowAssembler(window=100).hop == 50

    def test_counters(self):
        assembler = SlidingWindowAssembler(window=10, hop=5)
        push_all(assembler, records(17))
        assert assembler.n_pushed == 17
        assert assembler.n_windows == 2


class TestTail:
    def test_tail_emits_partial_window(self):
        assembler = SlidingWindowAssembler(window=10, hop=5)
        push_all(assembler, records(13))
        tail = assembler.tail()
        assert tail is not None
        assert tail.stop == 13
        assert tail.index == 1
        # Tail still spans up to `window` trailing records.
        assert tail.stop - tail.start == 10

    def test_tail_none_when_nothing_fresh(self):
        assembler = SlidingWindowAssembler(window=10, hop=5)
        push_all(assembler, records(10))
        assert assembler.tail() is None

    def test_tail_none_below_min_size(self):
        assembler = SlidingWindowAssembler(window=10, hop=5)
        push_all(assembler, records(11))
        assert assembler.tail(min_size=2) is None

    def test_short_stream_tail_has_nonnegative_start(self):
        # Regression: a stream shorter than one window must not produce a
        # negative start index.
        assembler = SlidingWindowAssembler(window=100, hop=50)
        push_all(assembler, records(7))
        tail = assembler.tail()
        assert tail is not None
        assert (tail.start, tail.stop) == (0, 7)

    def test_tail_is_single_shot(self):
        assembler = SlidingWindowAssembler(window=10, hop=5)
        push_all(assembler, records(13))
        assert assembler.tail() is not None
        assert assembler.tail() is None


class TestValidation:
    def test_window_too_small(self):
        with pytest.raises(ValueError, match="window"):
            SlidingWindowAssembler(window=1)

    def test_hop_out_of_range(self):
        with pytest.raises(ValueError, match="hop"):
            SlidingWindowAssembler(window=10, hop=0)
        with pytest.raises(ValueError, match="hop"):
            SlidingWindowAssembler(window=10, hop=11)


class TestIterWindows:
    def test_streams_records_into_windows(self):
        windows = list(iter_windows(records(25), window=10, hop=5))
        assert [(w.start, w.stop) for w in windows] == [
            (0, 10), (5, 15), (10, 20), (15, 25),
        ]

    def test_lazy_over_generator(self):
        def infinite():
            i = 0
            while True:
                yield i * 0.02, 0.01
                i += 1

        iterator = iter_windows(infinite(), window=10, hop=5)
        first = next(iterator)
        assert isinstance(first, ProbeWindow)
        assert (first.start, first.stop) == (0, 10)

    def test_time_range(self):
        (window,) = iter_windows(records(10), window=10, hop=10)
        lo, hi = window.time_range
        assert lo == pytest.approx(0.0)
        assert hi == pytest.approx(9 * 0.02)
