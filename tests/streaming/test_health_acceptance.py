"""End-to-end model-health acceptance on the regime-switch scenario.

The contract ISSUE 10 pins down: on the netsim-style regime-switching
stream, per-path health stays >= 0.8 while the model class holds and
falls <= 0.5 within 10 windows of the injected assumption break — while
zero-loss streams yield ``health=None`` (insufficient evidence), never
a spurious drift alarm.
"""

import numpy as np
import pytest

from repro.experiments.streams import regime_switch_stream
from repro.models.base import EMConfig
from repro.obs import health as health_mod
from repro.streaming.tracker import MonitorConfig, PathMonitor


@pytest.fixture(autouse=True)
def health_on():
    health_mod.enable_health()
    yield
    health_mod.disable_health()


def run_monitor(stream, window=600):
    config = MonitorConfig(window=window, hop=window // 2, n_hidden=1,
                           confirm=2, memory=3, gate_stationarity=False,
                           em=EMConfig(tol=1e-3, max_iter=100, seed=7))
    return PathMonitor(config).run(stream)


class TestRegimeSwitchSweep:
    @pytest.mark.slow
    def test_break_detected_within_ten_windows(self):
        # 12k probes, break at 6k: with window=600/hop=300 the first
        # fully post-break window is index 20.  The full-scale sweep
        # (window=1500, 30k probes) that calibrated the HealthConfig
        # thresholds behaves identically — see repro.obs.health.
        events = run_monitor(regime_switch_stream(12000, 6000, seed=0))
        first_post = 20
        healths = {e.window_index: e.health.health for e in events
                   if e.health is not None and e.health.health is not None}
        pre = [h for w, h in healths.items() if w < first_post]
        post10 = [h for w, h in healths.items()
                  if first_post <= w < first_post + 10]
        assert pre and min(pre) >= 0.8
        assert post10 and min(post10) <= 0.5
        # The break must be an *alarm*, not just an absolute-GOF dip.
        alarmed = [e for e in events
                   if e.health is not None and e.health.alarms
                   and e.window_index >= first_post]
        assert alarmed
        assert alarmed[0].window_index < first_post + 10
        # Confidence discounts the verdict while health is degraded.
        for event in events:
            if event.health is None or event.health.health is None:
                continue
            if event.confidence is not None:
                assert event.confidence <= event.health.health + 1e-9


class TestZeroLossWindows:
    def test_lossless_stream_is_insufficient_evidence_not_drift(self):
        # A clean constant-ish delay stream with no losses: every window
        # skips, every health report is None, and no detector ever runs.
        rng = np.random.default_rng(5)
        records = [(i * 0.02, 0.02 + float(rng.uniform(0, 0.001)))
                   for i in range(2400)]
        events = run_monitor(records, window=600)
        assert events
        for event in events:
            assert not event.analysis.analyzed
            assert event.health is not None
            assert event.health.health is None
            assert event.health.reasons == ["insufficient-evidence"]
            assert event.health.alarms == []

    def test_lossless_windows_never_poison_the_detectors(self):
        # Interleaving evidence-free windows with scored ones must not
        # shift the baselines: detector state updates only on evidence.
        path = health_mod.PathHealth()
        from repro.models.diagnostics import WindowDiagnostics

        diag = WindowDiagnostics(
            True, n_obs=300, n_losses=12, mean_loglik=-0.8,
            emission_z=0.1, counts=np.array([200.0, 88.0, 12.0]),
            expected_counts=np.array([200.0, 88.0, 12.0]),
            dwell_gap=0.4, n_runs=30, loss_rate_gap=0.05,
            below_bound_mass=0.0, beta0=0.06)
        for i in range(40):
            if i % 2:
                report = path.update(None)
                assert report.health is None
            else:
                report = path.update(diag)
                assert report.health == 1.0
        assert path.n_updates == 20
        assert path.cusum.n_alarms == 0
