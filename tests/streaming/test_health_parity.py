"""The health-parity contract: verdict streams are byte-identical with
model-health scoring on or off, in every drain mode, while the health
payload itself rides next to the events as attributes only."""

import json

import pytest

from repro.experiments.streams import strong_dcl_stream
from repro.models.base import EMConfig
from repro.obs import health as health_mod
from repro.streaming.scheduler import MultiPathMonitor
from repro.streaming.tracker import MonitorConfig, PathMonitor

FAST_EM = EMConfig(tol=1e-3, max_iter=100, seed=7)


def fast_config(**overrides):
    defaults = dict(window=600, hop=300, n_hidden=1, confirm=2, memory=3,
                    gate_stationarity=False, em=FAST_EM)
    defaults.update(overrides)
    return MonitorConfig(**defaults)


def event_lines(events):
    dicts = []
    for e in events:
        d = e.to_dict()
        d.pop("lag_ms", None)  # wall-clock, inherently noisy
        dicts.append(json.dumps(d, sort_keys=True))
    return dicts


@pytest.fixture(autouse=True)
def health_off_guard():
    health_mod.disable_health()
    yield
    health_mod.disable_health()


@pytest.fixture(scope="module")
def records():
    return list(strong_dcl_stream(1500, seed=20))


class TestByteParity:
    def test_path_monitor_stream_identical_with_health_on(self, records):
        baseline = event_lines(PathMonitor(fast_config()).run(records))
        health_mod.enable_health()
        with_health = event_lines(PathMonitor(fast_config()).run(records))
        assert with_health == baseline

    @pytest.mark.parametrize("mode", ["fused", "pool"])
    def test_drain_modes_identical_with_health_on(self, records, mode):
        streams = {"p0": records}
        baseline = event_lines(
            MultiPathMonitor(fast_config(), drain_mode=mode)
            .run_streams(streams))
        health_mod.enable_health()
        with_health = event_lines(
            MultiPathMonitor(fast_config(), drain_mode=mode)
            .run_streams(streams))
        assert with_health == baseline

    def test_health_payload_never_enters_to_dict(self, records):
        health_mod.enable_health()
        events = PathMonitor(fast_config()).run(records)
        analyzed = [e for e in events if e.analysis.analyzed]
        assert analyzed
        for event in analyzed:
            assert event.health is not None  # the attribute rides along
            payload = event.to_dict()
            assert "health" not in payload
            assert "confidence" not in payload


class TestHealthRidesTheEvents:
    def test_fused_and_pool_agree_on_health_scores(self, records):
        health_mod.enable_health()
        streams = {"p0": records}

        def health_lines(mode):
            events = MultiPathMonitor(fast_config(), drain_mode=mode) \
                .run_streams(streams)
            return [json.dumps(e.health.to_dict(), sort_keys=True)
                    for e in events if e.health is not None]

        fused, pool = health_lines("fused"), health_lines("pool")
        assert fused and fused == pool

    def test_pool_workers_propagate_the_health_flag(self, records):
        # Diagnostics are computed inside finish_window, which pool
        # drains run in worker processes: the flag must survive the
        # obs-config round-trip or every report degrades to
        # insufficient-evidence.
        health_mod.enable_health()
        monitor = MultiPathMonitor(fast_config(), n_jobs=2,
                                   drain_mode="pool")
        events = monitor.run_streams({"p0": records, "p1": records})
        scored = [e for e in events
                  if e.health is not None and e.health.health is not None]
        assert scored
        for event in scored:
            assert event.health.gof["ok"] is True
            assert event.confidence is not None

    def test_health_off_leaves_attributes_none(self, records):
        events = PathMonitor(fast_config()).run(records)
        for event in events:
            assert event.health is None
            assert event.confidence is None
