"""Tests for warm-started per-window EM fits."""

import numpy as np
import pytest

from repro.core.discretize import DelayDiscretizer
from repro.experiments.streams import strong_dcl_stream
from repro.models.base import EMConfig, InsufficientLossError
from repro.netsim.trace import PathObservation
from repro.streaming.online_em import WarmState, streaming_fit

EM = EMConfig(tol=1e-3, max_iter=200, seed=7)


def observation_from(records):
    send_times, delays = zip(*records)
    return PathObservation(np.array(send_times), np.array(delays))


def symbolize(observation, n_symbols=5):
    discretizer = DelayDiscretizer.from_observation(observation, n_symbols)
    return discretizer.observation_sequence(observation)


@pytest.fixture(scope="module")
def window_pair():
    """Two overlapping windows of one stationary strong-DCL stream."""
    records = list(strong_dcl_stream(2000, seed=3))
    first = symbolize(observation_from(records[:800]))
    second = symbolize(observation_from(records[400:1200]))
    return first, second


class TestWarmStart:
    # EM is a local optimizer: across *different* windows warm and cold
    # may settle in different basins, so the HMM case gets a loose
    # comparison while the MMHD cases (whose optimum is effectively
    # unique here) must match to round-off.
    @pytest.mark.parametrize("kind,n_hidden,tol", [
        ("mmhd", 1, 1e-3), ("mmhd", 2, 1e-3), ("hmm", 2, 5.0),
    ])
    def test_warm_at_least_as_good_as_cold(self, window_pair, kind,
                                           n_hidden, tol):
        first, second = window_pair
        cold_first = streaming_fit(first, n_hidden, config=EM, kind=kind)
        assert not cold_first.warm_used
        warm = streaming_fit(second, n_hidden, config=EM, kind=kind,
                             warm=cold_first.warm_state())
        cold = streaming_fit(second, n_hidden, config=EM, kind=kind)
        assert warm.warm_used
        assert warm.fallback_reason is None
        assert (warm.fitted.log_likelihood
                >= cold.fitted.log_likelihood - tol)

    def test_warm_converges_faster(self, window_pair):
        first, second = window_pair
        cold_first = streaming_fit(first, 1, config=EM, kind="mmhd")
        warm = streaming_fit(second, 1, config=EM, kind="mmhd",
                             warm=cold_first.warm_state())
        cold = streaming_fit(second, 1, config=EM, kind="mmhd")
        assert warm.fitted.n_iter < cold.fitted.n_iter

    def test_same_window_warm_refit_is_nearly_instant(self, window_pair):
        first, _ = window_pair
        cold = streaming_fit(first, 1, config=EM, kind="mmhd")
        again = streaming_fit(first, 1, config=EM, kind="mmhd",
                              warm=cold.warm_state())
        assert again.warm_used
        assert again.fitted.n_iter <= 2
        assert (again.fitted.log_likelihood
                >= cold.fitted.log_likelihood - 1e-6)

    def test_pmf_shape_and_normalisation(self, window_pair):
        first, second = window_pair
        cold = streaming_fit(first, 2, config=EM, kind="mmhd")
        warm = streaming_fit(second, 2, config=EM, kind="mmhd",
                             warm=cold.warm_state())
        pmf = warm.fitted.virtual_delay_pmf
        assert pmf.shape == (second.n_symbols,)
        assert pmf.sum() == pytest.approx(1.0)


class TestFallback:
    def test_shape_mismatch_falls_back_to_cold(self, window_pair):
        first, second = window_pair
        cold = streaming_fit(first, 2, config=EM, kind="mmhd")
        mismatched = streaming_fit(second, 3, config=EM, kind="mmhd",
                                   warm=cold.warm_state())
        # Not an error: the warm state was simply unusable.
        assert not mismatched.warm_used
        assert mismatched.fallback_reason is None

    def test_kind_mismatch_falls_back_to_cold(self, window_pair):
        first, second = window_pair
        cold = streaming_fit(first, 2, config=EM, kind="mmhd")
        crossed = streaming_fit(second, 2, config=EM, kind="hmm",
                                warm=cold.warm_state())
        assert not crossed.warm_used
        assert crossed.fallback_reason is None

    def test_degenerate_warm_state_recovers_cleanly(self, window_pair):
        _, second = window_pair
        n = second.n_symbols
        # pi concentrated on one symbol plus an absorbing identity
        # transition: the observed symbol changes have zero probability,
        # so the warm E-step hits a zero likelihood.
        degenerate = WarmState("mmhd", n, 1, {
            "pi": np.eye(n)[0],
            "transition": np.eye(n),
            "loss_given_symbol": np.full(n, 0.01),
        })
        result = streaming_fit(second, 1, config=EM, kind="mmhd",
                               warm=degenerate)
        assert not result.warm_used
        assert result.fallback_reason == "zero-likelihood"
        # The fallback fit is a normal cold fit.
        cold = streaming_fit(second, 1, config=EM, kind="mmhd")
        assert (result.fitted.log_likelihood
                == pytest.approx(cold.fitted.log_likelihood))

    def test_no_losses_raises_typed_error(self):
        records = [(i * 0.02, 0.02 + 0.001 * (i % 7)) for i in range(300)]
        seq = symbolize(observation_from(records))
        with pytest.raises(InsufficientLossError):
            streaming_fit(seq, 1, config=EM, kind="mmhd")

    def test_insufficient_loss_error_is_a_value_error(self):
        # Pre-existing call sites catch ValueError; the subsystem must
        # not break them.
        assert issubclass(InsufficientLossError, ValueError)

    def test_unknown_kind_rejected(self, window_pair):
        first, _ = window_pair
        with pytest.raises(ValueError, match="kind"):
            streaming_fit(first, 1, config=EM, kind="markov")


class TestWarmState:
    def test_snapshot_roundtrip_mmhd(self, window_pair):
        first, _ = window_pair
        fitted = streaming_fit(first, 2, config=EM, kind="mmhd").fitted
        state = WarmState.from_model(fitted.model)
        rebuilt = state.build_model()
        np.testing.assert_allclose(rebuilt.pi, fitted.model.pi)
        np.testing.assert_allclose(rebuilt.transition,
                                   fitted.model.transition)
        np.testing.assert_allclose(rebuilt.loss_given_symbol,
                                   fitted.model.loss_given_symbol)

    def test_snapshot_roundtrip_hmm(self, window_pair):
        first, _ = window_pair
        fitted = streaming_fit(first, 2, config=EM, kind="hmm").fitted
        state = WarmState.from_model(fitted.model)
        rebuilt = state.build_model()
        np.testing.assert_allclose(rebuilt.emission, fitted.model.emission)

    def test_snapshot_is_a_copy(self, window_pair):
        first, _ = window_pair
        fitted = streaming_fit(first, 1, config=EM, kind="mmhd").fitted
        state = WarmState.from_model(fitted.model)
        state.params["pi"][0] = 123.0
        assert fitted.model.pi[0] != 123.0

    def test_matches(self, window_pair):
        first, _ = window_pair
        state = streaming_fit(first, 2, config=EM, kind="mmhd").warm_state()
        assert state.matches(first.n_symbols, 2, "mmhd")
        assert not state.matches(first.n_symbols, 3, "mmhd")
        assert not state.matches(first.n_symbols + 1, 2, "mmhd")
        assert not state.matches(first.n_symbols, 2, "hmm")

    def test_picklable(self, window_pair):
        import pickle

        first, _ = window_pair
        state = streaming_fit(first, 2, config=EM, kind="hmm").warm_state()
        clone = pickle.loads(pickle.dumps(state))
        assert clone.matches(first.n_symbols, 2, "hmm")
        np.testing.assert_allclose(clone.params["pi"], state.params["pi"])

    def test_rejects_unknown_kind(self):
        with pytest.raises(ValueError, match="kind"):
            WarmState("markov", 5, 2, {})
