"""Tests for per-window analysis, hysteresis, and the path monitor."""

import numpy as np
import pytest

from repro.experiments.streams import level_shift_stream, strong_dcl_stream
from repro.models.base import EMConfig
from repro.netsim.trace import PathObservation
from repro.streaming.tracker import (
    MonitorConfig,
    PathMonitor,
    VerdictTracker,
    analyze_window,
)
from repro.streaming.windows import SlidingWindowAssembler

FAST_EM = EMConfig(tol=1e-3, max_iter=100, seed=7)


def fast_config(**overrides):
    defaults = dict(window=800, hop=400, n_hidden=1, confirm=2, memory=3,
                    em=FAST_EM)
    defaults.update(overrides)
    return MonitorConfig(**defaults)


def observation_from(records):
    send_times, delays = zip(*records)
    return PathObservation(np.array(send_times), np.array(delays))


class TestMonitorConfig:
    def test_defaults_follow_the_paper_probing_rate(self):
        config = MonitorConfig()
        assert config.window == 3000
        assert config.hop == 1500
        assert (config.confirm, config.memory) == (3, 5)

    def test_identify_config_mirror(self):
        config = MonitorConfig(n_symbols=7, n_hidden=3, model="hmm",
                               beta0=0.1, em=FAST_EM)
        ident = config.identify_config()
        assert ident.n_symbols == 7
        assert ident.n_hidden == 3
        assert ident.model == "hmm"
        assert ident.beta0 == pytest.approx(0.1)
        assert ident.em is FAST_EM

    def test_bad_model_rejected(self):
        with pytest.raises(ValueError, match="model"):
            MonitorConfig(model="markov")

    def test_bad_hysteresis_rejected(self):
        with pytest.raises(ValueError, match="confirm"):
            MonitorConfig(confirm=0)
        with pytest.raises(ValueError, match="confirm"):
            MonitorConfig(confirm=4, memory=3)


class TestVerdictTracker:
    def test_needs_confirm_repeats_before_switching(self):
        tracker = VerdictTracker(confirm=2, memory=3)
        assert not tracker.update("strong")
        assert tracker.stable_verdict is None
        assert tracker.update("strong")
        assert tracker.stable_verdict == "strong"

    def test_single_outlier_does_not_flap(self):
        tracker = VerdictTracker(confirm=2, memory=3)
        tracker.update("strong")
        tracker.update("strong")
        assert not tracker.update("none")
        assert tracker.stable_verdict == "strong"

    def test_sustained_change_switches_once(self):
        tracker = VerdictTracker(confirm=2, memory=3)
        tracker.update("strong")
        tracker.update("strong")
        assert not tracker.update("weak")
        assert tracker.update("weak")
        assert tracker.stable_verdict == "weak"
        # A third confirmation is not a second change event.
        assert not tracker.update("weak")

    def test_confirm_one_tracks_every_window(self):
        tracker = VerdictTracker(confirm=1, memory=1)
        assert tracker.update("strong")
        assert tracker.update("none")
        assert tracker.stable_verdict == "none"

    def test_validation(self):
        with pytest.raises(ValueError):
            VerdictTracker(confirm=0, memory=3)
        with pytest.raises(ValueError):
            VerdictTracker(confirm=5, memory=3)


class TestAnalyzeWindow:
    def test_strong_window_analysed(self):
        observation = observation_from(strong_dcl_stream(800, seed=3))
        config = fast_config(gate_stationarity=False)
        analysis = analyze_window(observation, None, config)
        assert analysis.analyzed
        assert analysis.verdict == "strong"
        assert analysis.bound_seconds is not None
        assert analysis.warm_state is not None
        assert analysis.g_pmf.sum() == pytest.approx(1.0)

    def test_warm_state_threads_through(self):
        records = list(strong_dcl_stream(1200, seed=3))
        config = fast_config(gate_stationarity=False)
        first = analyze_window(observation_from(records[:800]), None, config,
                               window_index=0)
        second = analyze_window(observation_from(records[400:]),
                                first.warm_state, config, window_index=1)
        assert second.warm_used
        assert second.n_iter < first.n_iter

    def test_loss_free_window_skipped(self):
        records = [(i * 0.02, 0.02 + 0.001 * (i % 9)) for i in range(800)]
        config = fast_config(gate_stationarity=False)
        analysis = analyze_window(observation_from(records), None, config)
        assert analysis.status == "skipped"
        assert analysis.reason == "no-losses"
        assert analysis.warm_state is None

    def test_degenerate_window_skipped(self):
        # Constant delays leave the discretizer no queuing range.
        records = [(i * 0.02, 0.02) for i in range(400)]
        records[10] = (10 * 0.02, float("nan"))
        config = fast_config(gate_stationarity=False)
        analysis = analyze_window(observation_from(records), None, config)
        assert analysis.status == "skipped"
        assert analysis.reason.startswith("degenerate")

    def test_nonstationary_window_gated(self):
        # A window straddling a queue-ceiling jump fails the gate...
        records = list(level_shift_stream(800, shift_at=400, seed=3))
        observation = observation_from(records)
        gated = analyze_window(observation, None, fast_config())
        assert gated.status == "skipped"
        assert gated.reason == "nonstationary"
        # ...and is analysed anyway when the gate is off.
        ungated = analyze_window(observation, None,
                                 fast_config(gate_stationarity=False))
        assert ungated.analyzed

    def test_pure_function_same_inputs_same_outputs(self):
        observation = observation_from(strong_dcl_stream(800, seed=3))
        config = fast_config(gate_stationarity=False)
        a = analyze_window(observation, None, config, window_index=4)
        b = analyze_window(observation, None, config, window_index=4)
        assert a.log_likelihood == b.log_likelihood
        np.testing.assert_array_equal(a.g_pmf, b.g_pmf)


class TestPathMonitor:
    def test_events_cover_the_stream_in_order(self):
        config = fast_config(gate_stationarity=False)
        monitor = PathMonitor(config, path="p0")
        events = monitor.run(strong_dcl_stream(2100, seed=3))
        # 2100 probes, window 800 hop 400: full windows at 800, 1200,
        # 1600, 2000 plus the 100-probe tail.
        assert [e.window_index for e in events] == [0, 1, 2, 3, 4]
        assert events[-1].probe_range[1] == 2100

    def test_stable_verdict_emerges_with_hysteresis(self):
        config = fast_config(gate_stationarity=False)
        monitor = PathMonitor(config)
        events = monitor.run(strong_dcl_stream(2400, seed=3))
        analysed = [e for e in events if e.analysis.analyzed]
        assert len(analysed) >= config.confirm
        assert events[-1].stable_verdict == "strong"
        assert sum(e.changed for e in events) == 1

    def test_skipped_windows_do_not_touch_hysteresis(self):
        config = fast_config()
        monitor = PathMonitor(config)
        # The regime change makes mid-stream windows nonstationary.
        events = monitor.run(level_shift_stream(4000, shift_at=2000, seed=3))
        skipped = [e for e in events if not e.analysis.analyzed]
        assert skipped, "expected the gate to skip some windows"
        for event in skipped:
            assert event.analysis.verdict is None
            assert not event.changed

    def test_event_json_schema(self):
        import json

        config = fast_config(gate_stationarity=False)
        monitor = PathMonitor(config, path="probe-42")
        events = monitor.run(strong_dcl_stream(800, seed=3))
        payload = json.loads(json.dumps(events[0].to_dict()))
        assert payload["path"] == "probe-42"
        assert payload["window"] == 0
        assert payload["probe_range"] == [0, 800]
        assert payload["status"] == "ok"
        assert payload["verdict"] == "strong"
        assert isinstance(payload["g_pmf"], list)
        assert payload["loss_rate"] > 0
        assert payload["n_iter"] >= 1

    def test_short_stream_still_yields_a_tail_verdict(self):
        config = fast_config(gate_stationarity=False)
        monitor = PathMonitor(config)
        events = monitor.run(strong_dcl_stream(500, seed=3))
        assert len(events) == 1
        assert events[0].probe_range == (0, 500)
