"""Tests for the multi-path monitor scheduler."""

import json

import pytest

from repro.experiments.streams import strong_dcl_stream
from repro.models.base import EMConfig
from repro.streaming.scheduler import MultiPathMonitor
from repro.streaming.tracker import MonitorConfig, PathMonitor

FAST_EM = EMConfig(tol=1e-3, max_iter=100, seed=7)


def fast_config(**overrides):
    defaults = dict(window=600, hop=300, n_hidden=1, confirm=2, memory=3,
                    gate_stationarity=False, em=FAST_EM)
    defaults.update(overrides)
    return MonitorConfig(**defaults)


def event_dicts(events):
    """Comparable projections: drop wall-clock timing (inherently noisy)."""
    dicts = []
    for e in events:
        d = e.to_dict()
        d.pop("lag_ms", None)
        dicts.append(json.dumps(d, sort_keys=True))
    return dicts


class TestDeterminism:
    def test_identical_events_for_any_n_jobs(self):
        streams = {f"p{i}": list(strong_dcl_stream(1500, seed=20 + i))
                   for i in range(3)}
        serial = MultiPathMonitor(fast_config(), n_jobs=1)
        pooled = MultiPathMonitor(fast_config(), n_jobs=2)
        a = event_dicts(serial.run_streams(streams))
        b = event_dicts(pooled.run_streams(streams))
        assert a == b
        assert len(a) > 0

    def test_single_path_matches_path_monitor(self):
        records = list(strong_dcl_stream(1500, seed=20))
        multi = MultiPathMonitor(fast_config(), n_jobs=1)
        multi_events = multi.run_streams({"p0": records})
        single = PathMonitor(fast_config(), path="p0")
        single_events = single.run(records)
        assert event_dicts(multi_events) == event_dicts(single_events)


class TestFlowControl:
    def test_ingest_never_fits(self):
        monitor = MultiPathMonitor(fast_config(), max_pending=8)
        for send_time, delay in strong_dcl_stream(1500, seed=20):
            monitor.ingest("p0", send_time, delay)
        assert monitor.n_pending == 4  # windows at 600, 900, 1200, 1500
        assert len(monitor.events) == 0

    def test_backlog_drops_oldest(self):
        monitor = MultiPathMonitor(fast_config(), max_pending=2)
        for send_time, delay in strong_dcl_stream(3000, seed=20):
            monitor.ingest("p0", send_time, delay)
        # 9 windows complete but only 2 may wait.
        assert monitor.n_pending == 2
        assert monitor.dropped_windows == {"p0": 7}
        events = monitor.drain()
        # The retained (most recent) windows are the ones analysed.
        assert [e.window_index for e in events] == [7, 8]

    def test_event_ring_is_bounded(self):
        monitor = MultiPathMonitor(fast_config(), max_events=2)
        events = monitor.run_streams(
            {"p0": list(strong_dcl_stream(1800, seed=20))}
        )
        assert len(events) > 2
        assert len(monitor.events) == 2
        assert list(monitor.events) == events[-2:]

    def test_finish_flushes_tails(self):
        monitor = MultiPathMonitor(fast_config())
        for send_time, delay in strong_dcl_stream(700, seed=20):
            monitor.ingest("p0", send_time, delay)
        assert monitor.drain()  # the full window at 600
        final = monitor.finish()
        assert len(final) == 1
        assert final[0].probe_range[1] == 700

    def test_validation(self):
        with pytest.raises(ValueError, match="max_pending"):
            MultiPathMonitor(fast_config(), max_pending=0)


class TestWarmChaining:
    def test_later_windows_warm_start_per_path(self):
        monitor = MultiPathMonitor(fast_config(), n_jobs=2)
        streams = {f"p{i}": list(strong_dcl_stream(1500, seed=20 + i))
                   for i in range(2)}
        events = monitor.run_streams(streams)
        by_path = {}
        for event in events:
            by_path.setdefault(event.path, []).append(event)
        for path_events in by_path.values():
            analysed = [e for e in path_events if e.analysis.analyzed]
            assert not analysed[0].analysis.warm_used
            assert all(e.analysis.warm_used for e in analysed[1:])

    def test_paths_do_not_share_warm_state(self):
        # One path's verdict stream must be unaffected by monitoring a
        # second path alongside it.
        records = list(strong_dcl_stream(1500, seed=20))
        alone = MultiPathMonitor(fast_config(), n_jobs=1)
        alone_events = alone.run_streams({"p0": records})
        paired = MultiPathMonitor(fast_config(), n_jobs=1)
        paired_events = paired.run_streams({
            "p0": records,
            "noise": list(strong_dcl_stream(1500, q_max=0.04, seed=99)),
        })
        mine = [e for e in paired_events if e.path == "p0"]
        assert event_dicts(mine) == event_dicts(alone_events)
