"""Tests for the multi-path monitor scheduler."""

import json

import pytest

from repro.experiments.streams import strong_dcl_stream
from repro.models.base import EMConfig
from repro.streaming.scheduler import MultiPathMonitor
from repro.streaming.tracker import MonitorConfig, PathMonitor

FAST_EM = EMConfig(tol=1e-3, max_iter=100, seed=7)


def fast_config(**overrides):
    defaults = dict(window=600, hop=300, n_hidden=1, confirm=2, memory=3,
                    gate_stationarity=False, em=FAST_EM)
    defaults.update(overrides)
    return MonitorConfig(**defaults)


def event_dicts(events):
    """Comparable projections: drop wall-clock timing (inherently noisy)."""
    dicts = []
    for e in events:
        d = e.to_dict()
        d.pop("lag_ms", None)
        dicts.append(json.dumps(d, sort_keys=True))
    return dicts


class TestDeterminism:
    def test_identical_events_for_any_n_jobs(self):
        streams = {f"p{i}": list(strong_dcl_stream(1500, seed=20 + i))
                   for i in range(3)}
        serial = MultiPathMonitor(fast_config(), n_jobs=1)
        pooled = MultiPathMonitor(fast_config(), n_jobs=2)
        a = event_dicts(serial.run_streams(streams))
        b = event_dicts(pooled.run_streams(streams))
        assert a == b
        assert len(a) > 0

    def test_single_path_matches_path_monitor(self):
        records = list(strong_dcl_stream(1500, seed=20))
        multi = MultiPathMonitor(fast_config(), n_jobs=1)
        multi_events = multi.run_streams({"p0": records})
        single = PathMonitor(fast_config(), path="p0")
        single_events = single.run(records)
        assert event_dicts(multi_events) == event_dicts(single_events)


class TestFlowControl:
    def test_ingest_never_fits(self):
        monitor = MultiPathMonitor(fast_config(), max_pending=8)
        for send_time, delay in strong_dcl_stream(1500, seed=20):
            monitor.ingest("p0", send_time, delay)
        assert monitor.n_pending == 4  # windows at 600, 900, 1200, 1500
        assert len(monitor.events) == 0

    def test_backlog_drops_oldest(self):
        monitor = MultiPathMonitor(fast_config(), max_pending=2)
        for send_time, delay in strong_dcl_stream(3000, seed=20):
            monitor.ingest("p0", send_time, delay)
        # 9 windows complete but only 2 may wait.
        assert monitor.n_pending == 2
        assert monitor.dropped_windows == {"p0": 7}
        events = monitor.drain()
        # The retained (most recent) windows are the ones analysed.
        assert [e.window_index for e in events] == [7, 8]

    def test_event_ring_is_bounded(self):
        monitor = MultiPathMonitor(fast_config(), max_events=2)
        events = monitor.run_streams(
            {"p0": list(strong_dcl_stream(1800, seed=20))}
        )
        assert len(events) > 2
        assert len(monitor.events) == 2
        assert list(monitor.events) == events[-2:]

    def test_finish_flushes_tails(self):
        monitor = MultiPathMonitor(fast_config())
        for send_time, delay in strong_dcl_stream(700, seed=20):
            monitor.ingest("p0", send_time, delay)
        assert monitor.drain()  # the full window at 600
        final = monitor.finish()
        assert len(final) == 1
        assert final[0].probe_range[1] == 700

    def test_validation(self):
        with pytest.raises(ValueError, match="max_pending"):
            MultiPathMonitor(fast_config(), max_pending=0)


class TestWarmChaining:
    def test_later_windows_warm_start_per_path(self):
        monitor = MultiPathMonitor(fast_config(), n_jobs=2)
        streams = {f"p{i}": list(strong_dcl_stream(1500, seed=20 + i))
                   for i in range(2)}
        events = monitor.run_streams(streams)
        by_path = {}
        for event in events:
            by_path.setdefault(event.path, []).append(event)
        for path_events in by_path.values():
            analysed = [e for e in path_events if e.analysis.analyzed]
            assert not analysed[0].analysis.warm_used
            assert all(e.analysis.warm_used for e in analysed[1:])

    def test_paths_do_not_share_warm_state(self):
        # One path's verdict stream must be unaffected by monitoring a
        # second path alongside it.
        records = list(strong_dcl_stream(1500, seed=20))
        alone = MultiPathMonitor(fast_config(), n_jobs=1)
        alone_events = alone.run_streams({"p0": records})
        paired = MultiPathMonitor(fast_config(), n_jobs=1)
        paired_events = paired.run_streams({
            "p0": records,
            "noise": list(strong_dcl_stream(1500, q_max=0.04, seed=99)),
        })
        mine = [e for e in paired_events if e.path == "p0"]
        assert event_dicts(mine) == event_dicts(alone_events)


class TestDrainModes:
    def test_byte_identical_events_across_modes_and_jobs(self):
        """The parity contract: fused, pool, and auto drains emit the
        same verdict-event stream at every n_jobs."""
        streams = {f"p{i}": list(strong_dcl_stream(1500, seed=20 + i))
                   for i in range(3)}
        expected = None
        for mode in ("pool", "fused", "auto"):
            for n_jobs in (1, 2):
                monitor = MultiPathMonitor(fast_config(), n_jobs=n_jobs,
                                           drain_mode=mode)
                got = event_dicts(monitor.run_streams(streams))
                if expected is None:
                    expected = got
                    assert len(got) > 0
                else:
                    assert got == expected, (mode, n_jobs)

    def test_fused_matches_pool_for_hmm(self):
        streams = {f"p{i}": list(strong_dcl_stream(1200, seed=30 + i))
                   for i in range(2)}
        config = fast_config(model="hmm", n_hidden=2)
        pool = MultiPathMonitor(config, drain_mode="pool")
        fused = MultiPathMonitor(config, drain_mode="fused")
        assert (event_dicts(pool.run_streams(streams))
                == event_dicts(fused.run_streams(streams)))

    def test_fused_with_sequential_backend_matches_pool(self):
        """Every window falls back to the per-window lane, and the
        events still match."""
        config = fast_config(em=FAST_EM.replace(backend="sequential"))
        streams = {"p0": list(strong_dcl_stream(1500, seed=20))}
        pool = MultiPathMonitor(config, drain_mode="pool")
        fused = MultiPathMonitor(config, drain_mode="fused")
        assert (event_dicts(pool.run_streams(streams))
                == event_dicts(fused.run_streams(streams)))

    def test_auto_resolves_by_backend(self):
        assert MultiPathMonitor(fast_config())._resolve_drain_mode() == "fused"
        sequential = fast_config(em=FAST_EM.replace(backend="sequential"))
        assert (MultiPathMonitor(sequential)._resolve_drain_mode()
                == "pool")
        assert (MultiPathMonitor(fast_config(), drain_mode="pool")
                ._resolve_drain_mode() == "pool")

    def test_validation(self):
        with pytest.raises(ValueError, match="drain_mode"):
            MultiPathMonitor(fast_config(), drain_mode="turbo")


class TestBackloggedRounds:
    def test_single_drain_resolves_full_backlog_with_warm_chaining(self):
        """One backlogged path drains all its pending windows in one
        drain(), windows in order and warm-chained across sub-rounds."""
        monitor = MultiPathMonitor(fast_config(), max_pending=8)
        for send_time, delay in strong_dcl_stream(1500, seed=20):
            monitor.ingest("p0", send_time, delay)
        assert monitor.n_pending == 4
        events = monitor.drain()
        assert monitor.n_pending == 0
        assert [e.window_index for e in events] == [0, 1, 2, 3]
        analysed = [e for e in events if e.analysis.analyzed]
        assert not analysed[0].analysis.warm_used
        assert all(e.analysis.warm_used for e in analysed[1:])
        # Byte-identical to draining after every probe (no backlog).
        fresh = MultiPathMonitor(fast_config(), max_pending=8)
        incremental = []
        for send_time, delay in strong_dcl_stream(1500, seed=20):
            fresh.ingest("p0", send_time, delay)
            incremental.extend(fresh.drain())
        assert event_dicts(events) == event_dicts(incremental)

    def test_n_pending_counter_stays_true(self):
        """The incremental counter agrees with the per-path deques
        through overflow, drains, and end-of-stream tails."""
        monitor = MultiPathMonitor(fast_config(), max_pending=2)

        def truth():
            return sum(len(s.pending) for s in monitor._paths.values())

        for send_time, delay in strong_dcl_stream(3000, seed=20):
            monitor.ingest("p0", send_time, delay)
        assert monitor.n_pending == truth() == 2
        monitor.drain()
        assert monitor.n_pending == truth() == 0
        for send_time, delay in strong_dcl_stream(700, seed=21):
            monitor.ingest("p1", send_time, delay)
        assert monitor.n_pending == truth() == 1
        assert monitor.finish()  # flushes p0 and p1 tails
        assert monitor.n_pending == truth() == 0
