"""Streaming-vs-batch equivalence on stationary traces.

The streaming subsystem is an incremental re-packaging of the batch
pipeline, so on a stationary trace the two must agree: a window fed
through :func:`repro.streaming.tracker.analyze_window` (warm-started or
not) has to reproduce the verdict, the virtual-queuing-delay pmf ``G``,
and the ``Q_k`` bound that :func:`repro.core.identify.identify` computes
on the same probes.
"""

import numpy as np
import pytest

from repro.core.identify import IdentifyConfig, identify
from repro.experiments.streams import strong_dcl_stream
from repro.models.base import EMConfig
from repro.netsim.trace import PathObservation
from repro.streaming import MonitorConfig, PathMonitor

EM = EMConfig(tol=1e-3, max_iter=200, seed=7)


def observation_from(records):
    send_times, delays = zip(*records)
    return PathObservation(np.array(send_times), np.array(delays))


@pytest.fixture(scope="module")
def stream_records():
    return list(strong_dcl_stream(2400, seed=3))


def batch_report(records):
    config = IdentifyConfig(n_hidden=1, em=EM)
    return identify(observation_from(records), config)


class TestSingleWindow:
    def test_whole_stream_as_one_window_matches_batch(self, stream_records):
        n = len(stream_records)
        config = MonitorConfig(window=n, hop=n, n_hidden=1,
                               gate_stationarity=False, em=EM)
        monitor = PathMonitor(config)
        events = monitor.run(stream_records)
        assert len(events) == 1
        event = events[0]
        report = batch_report(stream_records)
        assert event.analysis.verdict == report.verdict == "strong"
        np.testing.assert_allclose(event.analysis.g_pmf,
                                   report.distribution.pmf, atol=1e-6)
        accepted = report.sdcl if report.sdcl.accepted else report.wdcl
        assert event.analysis.d_star == accepted.d_star


class TestSlidingWindows:
    def test_final_window_matches_batch_on_same_probes(self, stream_records):
        config = MonitorConfig(window=800, hop=800, n_hidden=1,
                               gate_stationarity=False, em=EM)
        monitor = PathMonitor(config)
        events = monitor.run(stream_records)
        final = events[-1]
        start, stop = final.probe_range
        report = batch_report(stream_records[start:stop])
        # The final window was warm-started from earlier windows; the
        # batch fit is cold — on a stationary trace they must land on
        # the same estimate.
        assert final.analysis.warm_used
        assert final.analysis.verdict == report.verdict
        np.testing.assert_allclose(final.analysis.g_pmf,
                                   report.distribution.pmf, atol=1e-3)

    def test_bound_matches_batch_discretization(self, stream_records):
        config = MonitorConfig(window=800, hop=800, n_hidden=1,
                               gate_stationarity=False, em=EM)
        monitor = PathMonitor(config)
        events = monitor.run(stream_records)
        for event in events:
            analysis = event.analysis
            if not analysis.analyzed or analysis.verdict == "none":
                continue
            # The per-window bound is the upper edge of the accepted
            # test's d* symbol: positive and no larger than the window's
            # own maximum queuing delay estimate can justify.
            assert analysis.bound_seconds > 0
            start, stop = event.probe_range
            window_obs = observation_from(stream_records[start:stop])
            delays = window_obs.delays
            q_range = (np.nanmax(delays) - np.nanmin(delays))
            assert analysis.bound_seconds <= q_range * (1 + 1e-9)

    def test_stationary_trace_verdict_is_stable_throughout(
            self, stream_records):
        config = MonitorConfig(window=800, hop=400, n_hidden=1, confirm=2,
                               memory=3, gate_stationarity=False, em=EM)
        monitor = PathMonitor(config)
        events = monitor.run(stream_records)
        verdicts = {e.analysis.verdict for e in events if e.analysis.analyzed}
        assert verdicts == {"strong"}
        assert events[-1].stable_verdict == "strong"
