"""Tests for the ``repro monitor`` CLI subcommand."""

import io
import json

import numpy as np
import pytest

from repro.cli import build_parser, main
from repro.experiments.streams import strong_dcl_stream
from repro.measurement.traceio import save_observation
from repro.netsim.trace import PathObservation


def stream_csv(tmp_path, n=1500, seed=20, name="obs.csv"):
    send_times, delays = zip(*strong_dcl_stream(n, seed=seed))
    path = tmp_path / name
    save_observation(PathObservation(np.array(send_times), np.array(delays)),
                     path)
    return path


def monitor_args(*extra):
    return ["monitor", "--window", "600", "--hop", "300", "--hidden", "1",
            "--confirm", "2", "--memory", "3", "--no-stationarity-gate",
            *extra]


def emitted_events(capsys):
    out = capsys.readouterr().out
    return [json.loads(line) for line in out.splitlines() if line.strip()]


class TestParsing:
    def test_monitor_command_parses(self):
        parser = build_parser()
        args = parser.parse_args(["monitor", "a.csv", "b.csv", "--follow",
                                  "--jobs", "2", "--max-windows", "4"])
        assert args.inputs == ["a.csv", "b.csv"]
        assert args.follow
        assert args.jobs == 2

    def test_no_inputs_and_no_demo_exits(self, capsys):
        with pytest.raises(SystemExit, match="monitor"):
            main(monitor_args())


class TestEvents:
    def test_csv_input_emits_jsonl_verdicts(self, tmp_path, capsys):
        csv_path = stream_csv(tmp_path)
        code = main(monitor_args(str(csv_path)))
        events = emitted_events(capsys)
        assert code == 0
        # 1500 probes, window 600 hop 300: windows at 600..1500.
        assert len(events) == 4
        assert all(e["path"] == str(csv_path) for e in events)
        assert events[-1]["stable_verdict"] == "strong"
        assert events[-1]["probe_range"] == [900, 1500]

    def test_multiple_inputs_tracked_as_separate_paths(self, tmp_path,
                                                       capsys):
        first = stream_csv(tmp_path, seed=20, name="a.csv")
        second = stream_csv(tmp_path, seed=21, name="b.csv")
        code = main(monitor_args(str(first), str(second)))
        events = emitted_events(capsys)
        assert code == 0
        assert {e["path"] for e in events} == {str(first), str(second)}
        for path in (str(first), str(second)):
            windows = [e["window"] for e in events if e["path"] == path]
            assert windows == sorted(windows)

    def test_stdin_input(self, tmp_path, capsys, monkeypatch):
        csv_path = stream_csv(tmp_path, n=700)
        monkeypatch.setattr("sys.stdin", io.StringIO(csv_path.read_text()))
        code = main(monitor_args("-"))
        events = emitted_events(capsys)
        assert code == 0
        assert events
        assert all(e["path"] == "stdin" for e in events)
        # The 100-probe leftover still becomes a final tail window.
        assert events[-1]["probe_range"][1] == 700

    def test_demo_stream(self, capsys):
        code = main(monitor_args("--demo", "700", "--seed", "20"))
        events = emitted_events(capsys)
        assert code == 0
        assert events[0]["path"] == "demo"
        assert events[0]["status"] == "ok"
        assert events[0]["verdict"] == "strong"

    def test_max_windows_stops_early(self, capsys):
        code = main(monitor_args("--demo", "3000", "--max-windows", "2"))
        events = emitted_events(capsys)
        assert code == 0
        assert len(events) == 2

    def test_later_windows_warm_start(self, capsys):
        main(monitor_args("--demo", "1500", "--seed", "20"))
        events = emitted_events(capsys)
        assert not events[0]["warm_start"]
        assert all(e["warm_start"] for e in events[1:])

    def test_event_schema_is_stable(self, capsys):
        main(monitor_args("--demo", "700", "--seed", "20"))
        (event, *_) = emitted_events(capsys)
        assert set(event) == {
            "path", "window", "probe_range", "time_range", "status",
            "reason", "verdict", "stable_verdict", "changed", "g_pmf",
            "d_star", "bound_seconds", "loss_rate", "log_likelihood",
            "n_iter", "warm_start", "fallback_reason", "lag_ms",
        }
