"""Tests for trace persistence and import."""

import numpy as np
import pytest

from repro.measurement.traceio import (
    iter_observation,
    load_observation,
    load_timestamp_pair,
    load_trace,
    save_observation,
    save_trace,
)
from repro.netsim.trace import PathObservation, ProbeRecord, ProbeTrace


@pytest.fixture
def observation():
    return PathObservation(
        np.array([0.0, 0.02, 0.04, 0.06]),
        np.array([0.051, np.nan, 0.0530001, 0.052]),
    )


class TestObservationCsv:
    def test_roundtrip(self, observation, tmp_path):
        path = save_observation(observation, tmp_path / "obs.csv")
        loaded = load_observation(path)
        np.testing.assert_allclose(loaded.send_times, observation.send_times)
        np.testing.assert_allclose(loaded.delays[~loaded.lost],
                                   observation.delays[~observation.lost])
        np.testing.assert_array_equal(loaded.lost, observation.lost)

    def test_bad_header_rejected(self, tmp_path):
        path = tmp_path / "bad.csv"
        path.write_text("time,rtt\n0.0,0.05\n")
        with pytest.raises(ValueError):
            load_observation(path)

    def test_short_row_rejected(self, tmp_path):
        path = tmp_path / "bad.csv"
        path.write_text("send_time,delay\n0.0\n")
        with pytest.raises(ValueError):
            load_observation(path)

    def test_empty_rejected(self, tmp_path):
        path = tmp_path / "empty.csv"
        path.write_text("send_time,delay\n")
        with pytest.raises(ValueError):
            load_observation(path)

    def test_lost_marker_case_insensitive(self, tmp_path):
        path = tmp_path / "obs.csv"
        path.write_text("send_time,delay\n0.0,LOST\n0.02,0.05\n")
        loaded = load_observation(path)
        assert loaded.lost[0] and not loaded.lost[1]


class TestIterObservation:
    def test_matches_eager_load(self, observation, tmp_path):
        path = save_observation(observation, tmp_path / "obs.csv")
        records = list(iter_observation(path))
        loaded = load_observation(path)
        np.testing.assert_allclose([t for t, _ in records],
                                   loaded.send_times)
        np.testing.assert_allclose([d for _, d in records], loaded.delays)

    def test_losses_are_nan(self, observation, tmp_path):
        path = save_observation(observation, tmp_path / "obs.csv")
        delays = [d for _, d in iter_observation(path)]
        assert np.isnan(delays[1])
        assert not np.isnan(delays[0])

    def test_reads_open_stream(self, observation, tmp_path):
        path = save_observation(observation, tmp_path / "obs.csv")
        with open(path) as handle:
            records = list(iter_observation(handle))
        assert len(records) == 4

    def test_reads_iterable_of_lines(self):
        lines = iter(["send_time,delay\n", "0.0,0.05\n", "0.02,lost\n"])
        records = list(iter_observation(lines))
        assert records[0] == (0.0, 0.05)
        assert np.isnan(records[1][1])

    def test_is_lazy(self):
        """Rows come out before (and without) the source being exhausted."""
        def endless():
            yield "send_time,delay\n"
            i = 0
            while True:
                yield f"{i * 0.02},0.05\n"
                i += 1

        iterator = iter_observation(endless())
        assert next(iterator) == (0.0, 0.05)
        assert next(iterator) == (0.02, 0.05)

    def test_bad_header_rejected_on_first_pull(self):
        iterator = iter_observation(iter(["time,rtt\n", "0.0,0.05\n"]))
        with pytest.raises(ValueError, match="bad header"):
            next(iterator)

    def test_error_names_stream_and_line(self):
        lines = iter(["send_time,delay\n", "0.0,0.05\n", "0.02\n"])
        iterator = iter_observation(lines)
        next(iterator)
        with pytest.raises(ValueError, match="<stream>:3"):
            next(iterator)


class TestTraceNpz:
    def test_roundtrip_preserves_ground_truth(self, tmp_path):
        trace = ProbeTrace(["l0", "l1"], 0.015, 0.02, 10)
        trace.append(ProbeRecord(0.0, (0.01, 0.02), -1))
        trace.append(ProbeRecord(0.02, (0.05, 0.0), 0))
        path = save_trace(trace, tmp_path / "trace.npz")
        loaded = load_trace(path)
        assert loaded.link_names == trace.link_names
        assert loaded.base_delay == trace.base_delay
        assert loaded.probe_interval == trace.probe_interval
        np.testing.assert_allclose(loaded.hop_queuing_matrix,
                                   trace.hop_queuing_matrix)
        np.testing.assert_array_equal(loaded.loss_hops, trace.loss_hops)

    def test_roundtrip_through_observation(self, tmp_path):
        trace = ProbeTrace(["l0"], 0.01, 0.02, 10)
        for i in range(20):
            trace.append(ProbeRecord(i * 0.02, (0.001 * i,),
                                     0 if i % 7 == 0 else -1))
        loaded = load_trace(save_trace(trace, tmp_path / "t.npz"))
        np.testing.assert_array_equal(loaded.lost, trace.lost)
        np.testing.assert_allclose(
            loaded.observation().delays, trace.observation().delays
        )


class TestTimestampPairs:
    def test_losses_from_missing_receiver_seqs(self, tmp_path):
        sender = tmp_path / "send.txt"
        receiver = tmp_path / "recv.txt"
        sender.write_text("0 10.0\n1 10.02\n2 10.04\n")
        receiver.write_text("# receiver log\n0 10.051\n2 10.093\n")
        obs = load_timestamp_pair(sender, receiver)
        np.testing.assert_allclose(obs.send_times, [10.0, 10.02, 10.04])
        assert obs.lost[1]
        assert obs.delays[0] == pytest.approx(0.051)
        assert obs.delays[2] == pytest.approx(0.053)

    def test_unknown_receiver_seq_rejected(self, tmp_path):
        sender = tmp_path / "send.txt"
        receiver = tmp_path / "recv.txt"
        sender.write_text("0 10.0\n")
        receiver.write_text("0 10.05\n7 11.0\n")
        with pytest.raises(ValueError):
            load_timestamp_pair(sender, receiver)

    def test_malformed_line_rejected(self, tmp_path):
        sender = tmp_path / "send.txt"
        sender.write_text("0\n")
        receiver = tmp_path / "recv.txt"
        receiver.write_text("")
        with pytest.raises(ValueError):
            load_timestamp_pair(sender, receiver)

    def test_empty_sender_rejected(self, tmp_path):
        sender = tmp_path / "send.txt"
        sender.write_text("# nothing\n")
        receiver = tmp_path / "recv.txt"
        receiver.write_text("")
        with pytest.raises(ValueError):
            load_timestamp_pair(sender, receiver)

    def test_clock_repair_composes(self, tmp_path):
        # End-to-end: timestamps with skewed receiver clock -> import ->
        # repair -> sane delays.
        from repro.measurement.clock import remove_clock_effects

        rng = np.random.default_rng(0)
        n = 500
        send = 100.0 + np.arange(n) * 0.02
        true_delay = 0.05 + rng.exponential(0.01, n)
        true_delay[rng.random(n) < 0.1] = 0.05 + 1e-5
        skew = 1e-4
        recv = send + true_delay + 0.3 + skew * send
        sender = tmp_path / "s.txt"
        receiver = tmp_path / "r.txt"
        sender.write_text("\n".join(f"{i} {t:.9f}" for i, t in enumerate(send)))
        receiver.write_text("\n".join(
            f"{i} {t:.9f}" for i, t in enumerate(recv)
        ))
        obs = load_timestamp_pair(sender, receiver)
        repaired, fit = remove_clock_effects(obs)
        assert fit.skew == pytest.approx(skew, abs=5e-6)
