"""Tests for stationary-segment selection."""

import numpy as np
import pytest

from repro.measurement.stationarity import (
    select_stationary_segment,
    summarize_windows,
)
from repro.netsim.trace import PathObservation


def observation(delays, interval=0.02):
    delays = np.asarray(delays, dtype=float)
    return PathObservation(np.arange(len(delays)) * interval, delays)


class TestSummaries:
    def test_window_count(self):
        obs = observation(np.full(1000, 0.05))
        assert len(summarize_windows(obs, window=100)) == 10

    def test_window_statistics(self):
        delays = np.concatenate([np.full(100, 0.05), np.full(100, 0.1)])
        delays[150] = np.nan
        summaries = summarize_windows(observation(delays), window=100)
        assert summaries[0].median_delay == pytest.approx(0.05)
        assert summaries[1].loss_rate == pytest.approx(0.01)

    def test_invalid_window(self):
        with pytest.raises(ValueError):
            summarize_windows(observation([0.1]), window=0)

    def test_all_loss_window_has_nan_median(self):
        summaries = summarize_windows(observation([np.nan] * 10), window=10)
        assert np.isnan(summaries[0].median_delay)


class TestSelection:
    def test_selects_stable_middle(self):
        rng = np.random.default_rng(0)
        level_shift = np.concatenate([
            0.20 + rng.normal(0, 0.002, 500),   # high regime
            0.05 + rng.normal(0, 0.002, 2000),  # long stable regime
            0.30 + rng.normal(0, 0.002, 500),   # high again
        ])
        obs = observation(level_shift)
        segment, (start, stop) = select_stationary_segment(
            obs, window=250, delay_tolerance=0.2
        )
        assert 250 <= start <= 750
        assert 2000 <= stop <= 2750
        assert len(segment) == stop - start

    def test_whole_trace_returned_when_stationary(self):
        rng = np.random.default_rng(1)
        obs = observation(0.05 + rng.normal(0, 0.001, 2000))
        segment, (start, stop) = select_stationary_segment(obs, window=500)
        assert stop - start == 2000

    def test_fallback_when_nothing_qualifies(self):
        # Monotone ramp: no two consecutive windows agree.
        obs = observation(np.linspace(0.01, 1.0, 1000))
        segment, (start, stop) = select_stationary_segment(
            obs, window=100, delay_tolerance=0.01, min_windows=3
        )
        assert (start, stop) == (0, len(obs))

    def test_loss_rate_changes_break_runs(self):
        rng = np.random.default_rng(2)
        delays = 0.05 + rng.normal(0, 0.001, 2000)
        lossy = delays.copy()
        lossy[1000:1500][rng.random(500) < 0.4] = np.nan  # loss burst
        segment, (start, stop) = select_stationary_segment(
            observation(lossy), window=250, loss_tolerance=0.05
        )
        # The selected run avoids the lossy quarter.
        assert stop <= 1000 or start >= 1500

    def test_short_trace_passthrough(self):
        obs = observation([0.05, 0.06])
        segment, probe_range = select_stationary_segment(obs, window=100)
        assert probe_range == (0, 2)
