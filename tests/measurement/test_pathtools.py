"""Tests for the pchar-style capacity estimator."""

import pytest

from repro.measurement.pathtools import PcharProber
from repro.netsim.topology import chain_network
from repro.netsim.traffic import CbrSource, UdpSink


class TestPchar:
    def test_recovers_capacities_on_idle_path(self):
        net = chain_network([10e6, 2e6, 5e6], [100_000] * 3, seed=0)
        prober = PcharProber(net, "src0_0", "snk3_0", repetitions=8,
                             interval=0.02)
        prober.start(at=0.0)
        net.run(until=30.0)
        result = prober.estimate()
        # The chain hops sit at indices 1..3 of the stub-to-stub path.
        estimates = dict(zip(result.link_names, result.capacities_bps))
        assert estimates["r0->r1"] == pytest.approx(10e6, rel=0.05)
        assert estimates["r1->r2"] == pytest.approx(2e6, rel=0.05)
        assert estimates["r2->r3"] == pytest.approx(5e6, rel=0.05)

    def test_narrow_link_identified(self):
        net = chain_network([10e6, 2e6, 5e6], [100_000] * 3, seed=0)
        prober = PcharProber(net, "src0_0", "snk3_0", repetitions=8,
                             interval=0.02)
        prober.start(at=0.0)
        net.run(until=30.0)
        assert prober.estimate().narrow_link() == "r1->r2"

    def test_min_filter_defeats_cross_traffic(self):
        net = chain_network([10e6, 2e6, 5e6], [100_000] * 3, seed=1)
        sink = UdpSink(net.nodes["snk3_1"])
        CbrSource(net.nodes["src0_1"], "snk3_1", sink.port, "load",
                  rate_bps=1e6, packet_size=1000)
        prober = PcharProber(net, "src0_0", "snk3_0", repetitions=24,
                             interval=0.03)
        prober.start(at=1.0)
        net.run(until=60.0)
        result = prober.estimate()
        assert result.narrow_link() == "r1->r2"
        estimates = dict(zip(result.link_names, result.capacities_bps))
        assert estimates["r1->r2"] == pytest.approx(2e6, rel=0.25)

    def test_estimate_before_completion_raises(self):
        net = chain_network([10e6], [100_000], seed=0)
        prober = PcharProber(net, "src0_0", "snk1_0", repetitions=8)
        with pytest.raises(ValueError):
            prober.estimate()

    def test_needs_two_sizes(self):
        net = chain_network([10e6], [100_000], seed=0)
        with pytest.raises(ValueError):
            PcharProber(net, "src0_0", "snk1_0", sizes=[100])
