"""Tests for the measurement preparation pipeline."""

import numpy as np
import pytest

from repro.measurement.pipeline import prepare_observation
from repro.netsim.trace import PathObservation


def measured_observation(n=4000, skew=5e-5, seed=0):
    rng = np.random.default_rng(seed)
    send = np.arange(n) * 0.02
    delay = 0.05 + rng.exponential(0.008, n)
    delay[rng.random(n) < 0.1] = 0.05 + rng.uniform(0, 1e-4)
    delay[rng.random(n) < 0.02] = np.nan  # losses
    measured = delay + 0.25 + skew * send
    return PathObservation(send, measured), skew


class TestPrepare:
    def test_clock_removed_and_reported(self):
        observation, skew = measured_observation()
        prepared = prepare_observation(observation)
        assert prepared.clock_fit is not None
        assert prepared.clock_fit.skew == pytest.approx(skew, abs=5e-6)

    def test_stationary_segment_range_recorded(self):
        observation, _ = measured_observation()
        prepared = prepare_observation(observation, window=500)
        start, stop = prepared.segment_range
        assert 0 <= start < stop <= len(observation)
        assert len(prepared.observation) == stop - start
        assert 0 < prepared.used_fraction <= 1

    def test_stages_can_be_disabled(self):
        observation, _ = measured_observation()
        prepared = prepare_observation(observation, repair_clock=False,
                                       select_stationary=False)
        assert prepared.clock_fit is None
        assert prepared.segment_range == (0, len(observation))
        np.testing.assert_array_equal(prepared.observation.delays,
                                      observation.delays)

    def test_nonstationary_head_is_trimmed(self):
        observation, _ = measured_observation(seed=1)
        # Corrupt the head: a very different delay regime.
        delays = observation.delays.copy()
        delays[:1000] = delays[:1000] + 0.5
        shifted = PathObservation(observation.send_times, delays)
        prepared = prepare_observation(shifted, repair_clock=False,
                                       window=500)
        start, _ = prepared.segment_range
        assert start >= 1000

    def test_summary_mentions_stages(self):
        observation, _ = measured_observation(seed=2)
        prepared = prepare_observation(observation)
        text = prepared.summary()
        assert "clock" in text
        assert "stationary segment" in text

    def test_identification_runs_on_prepared(self):
        # Composition smoke test: prepared output feeds identify().
        from repro.core import IdentifyConfig, identify
        from repro.models.base import EMConfig

        observation, _ = measured_observation(seed=3)
        prepared = prepare_observation(observation)
        report = identify(prepared.observation,
                          IdentifyConfig(em=EMConfig(max_iter=20, tol=1e-2)))
        assert report.distribution.pmf.sum() == pytest.approx(1.0)
