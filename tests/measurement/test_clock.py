"""Tests for clock offset/skew estimation and removal."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.measurement.clock import (
    apply_clock_effects,
    estimate_clock,
    remove_clock_effects,
)
from repro.netsim.trace import PathObservation


def noisy_delays(n=2000, base=0.05, seed=0):
    """One-way delays: constant propagation + non-negative queuing noise."""
    rng = np.random.default_rng(seed)
    times = np.arange(n) * 0.02
    queuing = rng.exponential(0.01, size=n)
    # Ensure some probes see an (almost) empty queue, anchoring the hull.
    queuing[rng.random(n) < 0.1] = rng.uniform(0, 1e-4)
    return times, base + queuing


class TestEstimate:
    def test_recovers_injected_skew(self):
        times, delays = noisy_delays()
        skew = 8e-5
        fit = estimate_clock(times, delays + skew * times + 0.3)
        assert fit.skew == pytest.approx(skew, abs=2e-6)

    def test_zero_skew_estimated_as_zero(self):
        times, delays = noisy_delays(seed=1)
        fit = estimate_clock(times, delays)
        assert abs(fit.skew) < 2e-6

    def test_negative_skew(self):
        times, delays = noisy_delays(seed=2)
        fit = estimate_clock(times, delays - 5e-5 * times)
        assert fit.skew == pytest.approx(-5e-5, abs=2e-6)

    def test_line_lies_below_points(self):
        times, delays = noisy_delays(seed=3)
        measured = delays + 4e-5 * times
        fit = estimate_clock(times, measured)
        assert (measured - fit.line(times) >= -1e-9).all()

    def test_losses_ignored(self):
        times, delays = noisy_delays(seed=4)
        delays = delays.copy()
        delays[::7] = np.nan
        fit = estimate_clock(times, delays + 2e-5 * times)
        assert fit.skew == pytest.approx(2e-5, abs=3e-6)

    def test_too_few_points_rejected(self):
        with pytest.raises(ValueError):
            estimate_clock([0.0], [0.1])

    def test_length_mismatch_rejected(self):
        with pytest.raises(ValueError):
            estimate_clock([0.0, 1.0], [0.1])

    @settings(max_examples=20, deadline=None)
    @given(skew=st.floats(min_value=-2e-4, max_value=2e-4),
           seed=st.integers(0, 50))
    def test_skew_recovery_property(self, skew, seed):
        # Short traces (16 s) anchor the hull on ~0.1 ms queuing minima,
        # so recovery is good to ~tens of ppm — not the sub-ppm the long
        # direct tests assert.
        times, delays = noisy_delays(n=800, seed=seed)
        fit = estimate_clock(times, delays + skew * times)
        assert fit.skew == pytest.approx(skew, abs=2e-5)


class TestRemove:
    def test_roundtrip_restores_delay_dynamics(self):
        times, delays = noisy_delays(seed=5)
        observation = PathObservation(times, delays)
        distorted = apply_clock_effects(observation, offset=0.4, skew=6e-5)
        repaired, fit = remove_clock_effects(distorted)
        assert fit.skew == pytest.approx(6e-5, abs=2e-6)
        # Relative delays (queuing structure) restored.
        original_rel = delays - delays.min()
        repaired_rel = repaired.delays - np.nanmin(repaired.delays)
        np.testing.assert_allclose(repaired_rel, original_rel, atol=2e-4)

    def test_keep_level_preserves_minimum(self):
        times, delays = noisy_delays(seed=6)
        observation = PathObservation(times, delays)
        distorted = apply_clock_effects(observation, offset=0.0, skew=3e-5)
        repaired, _ = remove_clock_effects(distorted, keep_level=True)
        assert np.nanmin(repaired.delays) == pytest.approx(
            np.nanmin(distorted.delays)
        )

    def test_losses_preserved(self):
        times, delays = noisy_delays(seed=7)
        delays = delays.copy()
        delays[5] = np.nan
        observation = PathObservation(times, delays)
        distorted = apply_clock_effects(observation, offset=0.1, skew=1e-5)
        repaired, _ = remove_clock_effects(distorted)
        assert np.isnan(repaired.delays[5])

    def test_identification_unaffected_by_clock(self):
        # End-end property: skew-distort + repair leaves symbolization of
        # queuing dynamics intact.
        from repro.core.discretize import DelayDiscretizer

        times, delays = noisy_delays(seed=8)
        observation = PathObservation(times, delays)
        distorted = apply_clock_effects(observation, offset=0.25, skew=5e-5)
        repaired, _ = remove_clock_effects(distorted)
        disc_raw = DelayDiscretizer.from_observation(observation, 5)
        disc_rep = DelayDiscretizer.from_observation(repaired, 5)
        raw_syms = disc_raw.symbols_of(observation.delays)
        rep_syms = disc_rep.symbols_of(repaired.delays)
        assert (raw_syms == rep_syms).mean() > 0.97
