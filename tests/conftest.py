"""Shared fixtures for the test suite.

Simulation fixtures are deliberately small (tens of seconds of simulated
time) so the whole suite stays fast; the full paper-scale runs live in
``benchmarks/``.
"""

import numpy as np
import pytest

from repro.models.base import EMConfig, ObservationSequence
from repro.netsim.engine import Simulator
from repro.netsim.queues import DropTailQueue
from repro.netsim.topology import Network, chain_network


@pytest.fixture
def sim():
    return Simulator(seed=42)


@pytest.fixture
def two_host_network():
    """a --(1 Mb/s, 5 ms, 10 kB)--> b, both directions."""
    net = Network(seed=7)
    net.add_host("a")
    net.add_host("b")
    net.add_link("a", "b", bandwidth_bps=1e6, prop_delay=0.005,
                 queue=DropTailQueue(10_000))
    net.add_link("b", "a", bandwidth_bps=1e6, prop_delay=0.005,
                 queue=DropTailQueue(10_000))
    net.compute_routes()
    return net


@pytest.fixture
def small_chain():
    """The Fig.-4 chain with a 1 Mb/s bottleneck on (r2, r3)."""
    return chain_network(
        router_bandwidths_bps=[10e6, 10e6, 1e6],
        router_buffers_bytes=[80_000, 80_000, 20_000],
        seed=11,
    )


def make_markov_sequence(
    n_steps=6000,
    n_symbols=5,
    loss_given_symbol=(0.001, 0.001, 0.01, 0.05, 0.5),
    stickiness=0.85,
    seed=0,
):
    """A sticky Markov symbol chain with symbol-dependent losses.

    Returns ``(ObservationSequence, true_G_pmf)`` where the true ``G`` is
    the empirical distribution of the (hidden) symbols at loss instants.
    """
    rng = np.random.default_rng(seed)
    transition = np.full((n_symbols, n_symbols), (1 - stickiness) / (n_symbols - 1))
    np.fill_diagonal(transition, stickiness)
    symbols = np.empty(n_steps, dtype=int)
    state = 0
    for t in range(n_steps):
        symbols[t] = state + 1
        state = rng.choice(n_symbols, p=transition[state])
    loss_probs = np.asarray(loss_given_symbol)
    lost = rng.random(n_steps) < loss_probs[symbols - 1]
    if not lost.any():  # force at least one loss for G to exist
        lost[n_steps // 2] = True
    observed = symbols.copy()
    observed[lost] = -1
    true_g = np.bincount(symbols[lost] - 1, minlength=n_symbols).astype(float)
    true_g /= true_g.sum()
    return ObservationSequence(observed, n_symbols), true_g


@pytest.fixture
def markov_sequence():
    return make_markov_sequence()


@pytest.fixture
def fast_em():
    """EM config tuned for test speed."""
    return EMConfig(tol=1e-3, max_iter=60, freeze_loss_iters=3)
