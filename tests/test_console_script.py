"""Smoke tests for the packaged ``repro`` console entry point."""

import os
import subprocess
import sys
from pathlib import Path

REPO = Path(__file__).resolve().parents[1]


def load_pyproject():
    try:
        import tomllib
    except ImportError:  # Python < 3.11
        import pytest

        pytest.skip("tomllib unavailable")
    return tomllib.loads((REPO / "pyproject.toml").read_text())


class TestEntryPoint:
    def test_pyproject_declares_the_script(self):
        project = load_pyproject()["project"]
        assert project["scripts"] == {"repro": "repro.cli:main"}

    def test_target_resolves_to_a_callable(self):
        module_name, _, attr = "repro.cli:main".partition(":")
        import importlib

        module = importlib.import_module(module_name)
        assert callable(getattr(module, attr))

    def test_python_m_repro_help(self):
        env = dict(os.environ)
        env["PYTHONPATH"] = str(REPO / "src")
        result = subprocess.run(
            [sys.executable, "-m", "repro", "--help"],
            capture_output=True, text=True, env=env, timeout=60,
        )
        assert result.returncode == 0
        for command in ("simulate", "identify", "monitor", "stats"):
            assert command in result.stdout
