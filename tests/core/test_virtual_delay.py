"""Tests for the virtual-delay distribution estimators."""

import numpy as np
import pytest

from repro.core.discretize import DelayDiscretizer
from repro.core.virtual_delay import (
    ground_truth_distribution,
    hmm_distribution,
    mmhd_distribution,
    observed_delay_distribution,
)
from repro.models.base import EMConfig
from repro.netsim.trace import ProbeRecord, ProbeTrace


def synthetic_trace(n=400, q_dominant=0.08, base=0.01, seed=0):
    """Queue ramps 0 -> full; probes at the top are lost."""
    rng = np.random.default_rng(seed)
    trace = ProbeTrace(["l0"], base, 0.02, 10)
    queue = 0.0
    for i in range(n):
        queue = min(q_dominant, max(0.0, queue + rng.uniform(-0.01, 0.012)))
        lost = queue >= q_dominant - 1e-12 and rng.random() < 0.7
        trace.append(ProbeRecord(i * 0.02, (queue,), 0 if lost else -1))
    return trace


class TestGroundTruth:
    def test_lost_probe_delays_only(self):
        trace = synthetic_trace()
        disc = DelayDiscretizer.from_observation(trace.observation(), 5)
        dist = ground_truth_distribution(trace, disc)
        # All losses occur at the full queue: top symbol.
        assert dist.pmf[-1] > 0.95

    def test_raises_without_losses(self):
        trace = ProbeTrace(["l0"], 0.01, 0.02, 10)
        trace.append(ProbeRecord(0.0, (0.01,), -1))
        trace.append(ProbeRecord(0.02, (0.02,), -1))
        disc = DelayDiscretizer.from_observation(trace.observation(), 5)
        with pytest.raises(ValueError):
            ground_truth_distribution(trace, disc)

    def test_observed_distribution_spreads(self):
        # Fig. 5's contrast: observed delays cover low symbols too.
        trace = synthetic_trace()
        disc = DelayDiscretizer.from_observation(trace.observation(), 5)
        observed = observed_delay_distribution(trace, disc)
        virtual = ground_truth_distribution(trace, disc)
        # The observed distribution has mass below the top symbol; the
        # virtual (lost-probe) distribution concentrates at the top.
        assert observed.pmf[:4].sum() > 0.2
        assert observed.pmf[:3].sum() > virtual.pmf[:3].sum()
        assert virtual.pmf[:3].sum() < 0.05


class TestModelEstimators:
    @pytest.fixture
    def trace(self):
        return synthetic_trace(n=1500, seed=1)

    def test_mmhd_matches_ground_truth(self, trace):
        disc = DelayDiscretizer.from_observation(trace.observation(), 5)
        dist, fitted = mmhd_distribution(
            trace.observation(), disc, n_hidden=1,
            config=EMConfig(max_iter=60),
        )
        truth = ground_truth_distribution(trace, disc)
        assert dist.total_variation(truth) < 0.1
        assert fitted.virtual_delay_pmf.sum() == pytest.approx(1.0)

    def test_hmm_estimator_runs(self, trace):
        disc = DelayDiscretizer.from_observation(trace.observation(), 5)
        dist, fitted = hmm_distribution(
            trace.observation(), disc, n_hidden=2,
            config=EMConfig(max_iter=40),
        )
        assert dist.pmf.sum() == pytest.approx(1.0)
        assert "HMM" in dist.label

    def test_labels_identify_estimators(self, trace):
        disc = DelayDiscretizer.from_observation(trace.observation(), 5)
        dist, _ = mmhd_distribution(trace.observation(), disc, n_hidden=2,
                                    config=EMConfig(max_iter=10))
        assert dist.label == "MMHD N=2"
