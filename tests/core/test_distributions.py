"""Tests for DelayDistribution."""

import numpy as np
import pytest

from repro.core.discretize import DelayDiscretizer
from repro.core.distributions import DelayDistribution


class TestConstruction:
    def test_normalises_on_entry(self):
        dist = DelayDistribution([2.0, 2.0])
        np.testing.assert_allclose(dist.pmf, [0.5, 0.5])

    def test_rejects_negative_mass(self):
        with pytest.raises(ValueError):
            DelayDistribution([0.5, -0.5])

    def test_rejects_zero_mass(self):
        with pytest.raises(ValueError):
            DelayDistribution([0.0, 0.0])

    def test_rejects_empty(self):
        with pytest.raises(ValueError):
            DelayDistribution([])

    def test_discretizer_symbol_count_must_match(self):
        disc = DelayDiscretizer(3, 0.0, 1.0)
        with pytest.raises(ValueError):
            DelayDistribution([0.5, 0.5], discretizer=disc)

    def test_from_samples(self):
        dist = DelayDistribution.from_samples([1, 1, 2, 5], n_symbols=5)
        np.testing.assert_allclose(dist.pmf, [0.5, 0.25, 0, 0, 0.25])

    def test_from_samples_rejects_out_of_range(self):
        with pytest.raises(ValueError):
            DelayDistribution.from_samples([0, 1], n_symbols=5)
        with pytest.raises(ValueError):
            DelayDistribution.from_samples([], n_symbols=5)


class TestQueries:
    @pytest.fixture
    def dist(self):
        return DelayDistribution([0.0, 0.1, 0.0, 0.4, 0.5])

    def test_cdf_monotone_to_one(self, dist):
        cdf = dist.cdf()
        assert cdf[-1] == pytest.approx(1.0)
        assert (np.diff(cdf) >= 0).all()

    def test_cdf_at_saturates(self, dist):
        assert dist.cdf_at(0) == 0.0
        assert dist.cdf_at(10) == 1.0
        assert dist.cdf_at(2) == pytest.approx(0.1)

    def test_pmf_at(self, dist):
        assert dist.pmf_at(4) == pytest.approx(0.4)
        assert dist.pmf_at(0) == 0.0
        assert dist.pmf_at(99) == 0.0

    def test_min_symbol_with_mass(self, dist):
        assert dist.min_symbol_with_mass() == 2
        assert dist.min_symbol_with_mass(threshold=0.3) == 4

    def test_min_symbol_with_cdf(self, dist):
        assert dist.min_symbol_with_cdf(0.06) == 2
        assert dist.min_symbol_with_cdf(0.5) == 4
        assert dist.min_symbol_with_cdf(1.0) == 5

    def test_min_symbol_with_cdf_handles_exact_boundary(self):
        dist = DelayDistribution([0.06, 0.94, 0, 0, 0])
        assert dist.min_symbol_with_cdf(0.06) == 1

    def test_mean_symbol(self):
        dist = DelayDistribution([0.5, 0.0, 0.5])
        assert dist.mean_symbol() == pytest.approx(2.0)

    def test_total_variation(self):
        a = DelayDistribution([1.0, 0.0])
        b = DelayDistribution([0.0, 1.0])
        assert a.total_variation(b) == pytest.approx(1.0)
        assert a.total_variation(a) == 0.0

    def test_total_variation_size_mismatch(self):
        with pytest.raises(ValueError):
            DelayDistribution([1.0]).total_variation(DelayDistribution([1, 1]))

    def test_wasserstein_counts_distance_moved(self):
        a = DelayDistribution([1.0, 0, 0, 0])
        b = DelayDistribution([0, 0, 0, 1.0])
        assert a.wasserstein(b) == pytest.approx(3.0)

    def test_wasserstein_adjacent_bin_is_cheap(self):
        a = DelayDistribution([0, 0, 1.0, 0])
        b = DelayDistribution([0, 0, 0.5, 0.5])
        assert a.total_variation(b) == pytest.approx(0.5)
        assert a.wasserstein(b) == pytest.approx(0.5)
        far = DelayDistribution([0.5, 0, 1.0 - 0.5, 0])
        # Same TV, but W1 sees the far mass as twice as bad.
        assert far.wasserstein(a) == pytest.approx(1.0)

    def test_wasserstein_size_mismatch(self):
        with pytest.raises(ValueError):
            DelayDistribution([1.0]).wasserstein(DelayDistribution([1, 1]))

    def test_quantile_symbol(self):
        dist = DelayDistribution([0.25, 0.25, 0.25, 0.25])
        assert dist.quantile_symbol(0.5) == 2
        assert dist.quantile_symbol(1.0) == 4
        with pytest.raises(ValueError):
            dist.quantile_symbol(0.0)


class TestUnits:
    def test_seconds_upper_edge_requires_discretizer(self):
        with pytest.raises(ValueError):
            DelayDistribution([1.0]).seconds_upper_edge(1)

    def test_seconds_upper_edge(self):
        disc = DelayDiscretizer(4, 0.0, 0.4)
        dist = DelayDistribution([0.25] * 4, discretizer=disc)
        assert dist.seconds_upper_edge(2) == pytest.approx(0.2)
