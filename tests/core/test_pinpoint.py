"""Tests for dominant-link pinpointing (the paper's future work)."""

import numpy as np
import pytest

from repro.core.identify import IdentifyConfig
from repro.core.pinpoint import pinpoint_dominant_link
from repro.models.base import EMConfig
from repro.netsim.trace import ProbeRecord, ProbeTrace


def chain_trace(loss_hop_shares, n=3000, q_values=(0.02, 0.05, 0.1), seed=0,
                window=150, episode=40):
    """Synthetic 3-hop trace; losses land on hops per ``loss_hop_shares``.

    Congestion arrives in persistent *episodes* (the temporal correlation
    the model-based method feeds on): every ``window`` probes one hop —
    chosen by ``loss_hop_shares`` — ramps its queue to full, loses probes
    while full, then drains.  Lost probes see the full queue
    (``q_values[hop]``) at their loss hop plus small ambient queuing
    elsewhere, matching droptail semantics.
    """
    rng = np.random.default_rng(seed)
    names = [f"l{i}" for i in range(3)]
    trace = ProbeTrace(names, base_delay=0.03, probe_interval=0.02,
                       probe_size=10)
    shares = np.asarray(loss_hop_shares, dtype=float)
    shares = shares / shares.sum()
    queues = np.zeros(3)
    active_hop = -1
    for i in range(n):
        phase = i % window
        if phase == 0:
            active_hop = int(rng.choice(3, p=shares))
        ambient_drift = rng.uniform(-0.0015, 0.0015, size=3)
        queues = np.clip(queues + ambient_drift, 0.0, 0.004)
        loss_hop = -1
        if phase < episode:
            cap = q_values[active_hop]
            # Ramp up over the first half of the episode, hold full, drain.
            if phase < episode * 0.4:
                queues[active_hop] = cap * phase / (episode * 0.4)
            elif phase < episode * 0.8:
                queues[active_hop] = cap
                if rng.random() < 0.7:
                    loss_hop = active_hop
            else:
                queues[active_hop] = cap * (episode - phase) / (episode * 0.2)
        trace.append(ProbeRecord(i * 0.02, queues.copy(), loss_hop))
    return trace


@pytest.fixture
def fast_config():
    return IdentifyConfig(em=EMConfig(max_iter=30, tol=1e-3))


class TestPinpoint:
    def test_locates_single_loss_hop(self, fast_config):
        trace = chain_trace([0, 0, 1.0])
        report = pinpoint_dominant_link(trace, fast_config)
        assert report.located
        assert report.located_link == "l2"
        assert report.hop_index == 2
        assert report.loss_share == pytest.approx(1.0)

    def test_locates_dominant_hop_with_minor_losses(self, fast_config):
        trace = chain_trace([0.04, 0, 0.96], seed=1)
        report = pinpoint_dominant_link(trace, fast_config)
        assert report.located
        assert report.located_link == "l2"
        assert report.loss_share > 0.9

    def test_no_location_when_losses_split(self, fast_config):
        trace = chain_trace([0.5, 0, 0.5], seed=2)
        report = pinpoint_dominant_link(trace, fast_config, confirm=False)
        assert not report.located
        assert report.located_link is None
        # Episode assignment is random, so the split is only roughly even.
        assert 0.3 < report.loss_share < 0.75

    def test_prefix_profile_is_cumulative(self, fast_config):
        trace = chain_trace([0.2, 0.3, 0.5], seed=3)
        report = pinpoint_dominant_link(trace, fast_config, confirm=False,
                                        min_share=0.45)
        rates = [diag.loss_rate for diag in report.prefixes]
        assert rates == sorted(rates)
        assert rates[-1] == pytest.approx(trace.loss_rate)

    def test_confirmation_runs_identification_on_prefix(self, fast_config):
        trace = chain_trace([0, 0, 1.0], seed=4)
        report = pinpoint_dominant_link(trace, fast_config, confirm=True)
        assert report.confirmation is not None
        assert report.confirmation.dominant_link_exists

    def test_no_losses_raises(self, fast_config):
        trace = ProbeTrace(["l0"], 0.01, 0.02, 10)
        trace.append(ProbeRecord(0.0, (0.001,), -1))
        with pytest.raises(ValueError):
            pinpoint_dominant_link(trace, fast_config)

    def test_summary_mentions_location(self, fast_config):
        trace = chain_trace([0, 0, 1.0], seed=5)
        report = pinpoint_dominant_link(trace, fast_config, confirm=False)
        assert "l2" in report.summary()


class TestPrefixObservation:
    def test_prefix_loss_semantics(self):
        trace = chain_trace([0, 0, 1.0], n=500)
        # Losses are at hop 2: prefixes of 1-2 hops see no loss.
        assert trace.prefix_observation(1).loss_rate == 0.0
        assert trace.prefix_observation(2).loss_rate == 0.0
        assert trace.prefix_observation(3).loss_rate == pytest.approx(
            trace.loss_rate
        )

    def test_prefix_delay_excludes_downstream_queuing(self):
        trace = chain_trace([0, 0, 1.0], n=200)
        full = trace.observation()
        prefix = trace.prefix_observation(2)
        observed = ~np.isnan(full.delays)
        assert (prefix.delays[observed] <= full.delays[observed] + 1e-12).all()

    def test_invalid_prefix_rejected(self):
        trace = chain_trace([0, 0, 1.0], n=50)
        with pytest.raises(ValueError):
            trace.prefix_observation(0)
        with pytest.raises(ValueError):
            trace.prefix_observation(4)

    def test_per_hop_base_override(self):
        trace = chain_trace([0, 0, 1.0], n=50)
        prefix = trace.prefix_observation(2, per_hop_base=[0.01, 0.005, 0.015])
        observed = prefix.delays[~np.isnan(prefix.delays)]
        # Base is 15 ms; ambient queuing adds < 10 ms.
        assert observed.min() >= 0.015
        with pytest.raises(ValueError):
            trace.prefix_observation(2, per_hop_base=[0.01])
