"""Tests for the loss-pair baseline."""

import numpy as np
import pytest

from repro.core.discretize import DelayDiscretizer
from repro.core.losspair import losspair_distribution, losspair_max_queuing_delay
from repro.netsim.trace import LossPairTrace, ProbeRecord


def make_trace(companion_queuings, base_delay=0.01):
    """Pairs where the first probe is lost and the second survives with
    the given queuing delay."""
    trace = LossPairTrace(base_delay, 0.04, 10)
    for queuing in companion_queuings:
        lost = ProbeRecord(0.0, (queuing,), loss_hop=0)
        survivor = ProbeRecord(0.0, (queuing,), loss_hop=-1)
        trace.append(lost, survivor)
    return trace


class TestDistribution:
    def test_symbolizes_companion_delays(self):
        trace = make_trace([0.05, 0.05, 0.15])
        disc = DelayDiscretizer(4, propagation_delay=0.01, max_delay=0.21)
        dist = losspair_distribution(trace, disc)
        np.testing.assert_allclose(dist.pmf, [2 / 3, 0, 1 / 3, 0])
        assert dist.label == "loss-pair"

    def test_no_pairs_raises(self):
        trace = LossPairTrace(0.01, 0.04, 10)
        disc = DelayDiscretizer(4, 0.0, 1.0)
        with pytest.raises(ValueError):
            losspair_distribution(trace, disc)

    def test_pairs_with_both_outcomes_identical_are_skipped(self):
        trace = LossPairTrace(0.01, 0.04, 10)
        both_lost = ProbeRecord(0.0, (0.1,), 0)
        trace.append(both_lost, both_lost)
        disc = DelayDiscretizer(4, 0.0, 1.0)
        with pytest.raises(ValueError):
            losspair_distribution(trace, disc)


class TestMaxQueuingEstimate:
    def test_mode_recovers_concentrated_qk(self):
        # Companions saw an (almost) full queue: Q_k ~ 100 ms.
        rng = np.random.default_rng(0)
        queuings = 0.1 - rng.uniform(0, 0.004, size=100)
        estimate = losspair_max_queuing_delay(make_trace(queuings),
                                              bin_width=0.002)
        assert estimate == pytest.approx(0.1, abs=0.004)

    def test_mode_ignores_sparse_outliers(self):
        queuings = [0.1] * 50 + [0.35, 0.4]
        estimate = losspair_max_queuing_delay(make_trace(queuings),
                                              bin_width=0.002)
        assert estimate == pytest.approx(0.1, abs=0.004)

    def test_contaminated_companions_overestimate(self):
        # The paper's Table III point: cross traffic elsewhere inflates
        # companion delays, so the loss-pair estimate overshoots Q_k.
        q_k = 0.1
        rng = np.random.default_rng(1)
        queuings = q_k + rng.uniform(0.03, 0.05, size=100)
        estimate = losspair_max_queuing_delay(make_trace(queuings),
                                              bin_width=0.002)
        assert estimate > q_k + 0.02

    def test_too_few_samples_raises(self):
        with pytest.raises(ValueError):
            losspair_max_queuing_delay(make_trace([0.1, 0.1]))

    def test_invalid_bin_width(self):
        with pytest.raises(ValueError):
            losspair_max_queuing_delay(make_trace([0.1] * 5), bin_width=0)
