"""Tests for SDCL-Test and WDCL-Test (paper Theorems 1 and 2)."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.distributions import DelayDistribution
from repro.core.hypothesis import gdcl_test, sdcl_test, wdcl_test


def dist(pmf):
    return DelayDistribution(np.asarray(pmf, dtype=float))


class TestSDCL:
    def test_accepts_concentrated_distribution(self):
        # The paper's strong case: all loss mass at the top symbol.
        result = sdcl_test(dist([0, 0, 0, 0, 1.0]))
        assert result.accepted
        assert result.d_star == 5

    def test_accepts_when_mass_within_doubling_window(self):
        # d* = 3, everything within 2 d* = 6.
        result = sdcl_test(dist([0, 0, 0.5, 0.3, 0.2]))
        assert result.accepted

    def test_rejects_spread_distribution(self):
        # Mass at 2 and at 5: G(4) = 0.5 < 1.
        result = sdcl_test(dist([0, 0.5, 0, 0, 0.5]))
        assert not result.accepted
        assert result.d_star == 2
        assert result.cdf_at_2d_star == pytest.approx(0.5)

    def test_paper_weak_example_rejected_by_strong_test(self):
        # Fig. 6's situation: a small low-delay component breaks SDCL.
        result = sdcl_test(dist([0, 0.03, 0, 0, 0.97]))
        assert not result.accepted

    def test_tolerance_ignores_negligible_mass(self):
        result = sdcl_test(dist([1e-5, 0, 0, 0, 1.0]), tolerance=1e-3)
        assert result.accepted
        assert result.d_star == 5

    def test_tight_tolerance_sees_small_mass(self):
        result = sdcl_test(dist([1e-3, 0, 0, 0, 1.0]), tolerance=1e-5)
        assert not result.accepted

    def test_result_is_truthy_on_accept(self):
        assert bool(sdcl_test(dist([0, 0, 1.0])))
        assert not bool(sdcl_test(dist([0.5, 0, 0, 0, 0.5])))

    def test_summary_mentions_verdict(self):
        assert "ACCEPT" in sdcl_test(dist([0, 0, 1.0])).summary()


class TestWDCL:
    def test_accepts_paper_weak_case(self):
        # 3% of losses at a minor link (symbol 2), 97% at the dominant
        # (symbol 5): beta0 = 0.06 skips the minor mass, d* = 5.
        result = wdcl_test(dist([0, 0.03, 0, 0, 0.97]), beta0=0.06, beta1=0.0)
        assert result.accepted
        assert result.d_star == 5

    def test_rejects_with_tighter_beta0(self):
        # Same distribution, beta0 = 0.02: minor mass now counts, d* = 2,
        # G(4) = 0.03 < (1-0.02): reject — the paper's Section VI-A2.
        result = wdcl_test(dist([0, 0.03, 0, 0, 0.97]), beta0=0.02, beta1=0.0)
        assert not result.accepted

    def test_rejects_no_dcl_case(self):
        # Fig. 8: comparable mass at 2 and 5.
        result = wdcl_test(dist([0, 0.5, 0, 0, 0.5]), beta0=0.06, beta1=0.0)
        assert not result.accepted
        assert result.d_star == 2

    def test_beta1_relaxes_threshold(self):
        spread = dist([0, 0.5, 0, 0.4, 0.1])
        strict = wdcl_test(spread, beta0=0.06, beta1=0.0)
        relaxed = wdcl_test(spread, beta0=0.45, beta1=0.4)
        assert not strict.accepted
        assert relaxed.accepted

    def test_threshold_formula(self):
        result = wdcl_test(dist([0, 0, 1.0]), beta0=0.1, beta1=0.2)
        assert result.threshold == pytest.approx(0.9 * 0.8)

    def test_beta_zero_matches_sdcl(self):
        for pmf in ([0, 0, 0, 0, 1.0], [0, 0.5, 0, 0, 0.5], [0.2] * 5):
            strong = sdcl_test(dist(pmf))
            weak = wdcl_test(dist(pmf), beta0=0.0, beta1=0.0)
            assert strong.accepted == weak.accepted

    def test_invalid_betas_rejected(self):
        with pytest.raises(ValueError):
            wdcl_test(dist([1.0]), beta0=0.5, beta1=0.0)
        with pytest.raises(ValueError):
            wdcl_test(dist([1.0]), beta0=0.0, beta1=-0.1)

    def test_records_parameters(self):
        result = wdcl_test(dist([0, 0, 1.0]), beta0=0.06, beta1=0.01)
        assert result.beta0 == 0.06
        assert result.beta1 == 0.01
        assert "beta0=0.06" in result.summary()


class TestGeneralizedTest:
    def test_lambda_one_matches_wdcl(self):
        for pmf in ([0, 0.03, 0, 0, 0.97], [0, 0.5, 0, 0, 0.5], [0.2] * 5):
            weak = wdcl_test(dist(pmf), beta0=0.06, beta1=0.0)
            general = gdcl_test(dist(pmf), beta0=0.06, beta1=0.0,
                                delay_factor=1.0)
            assert weak.accepted == general.accepted
            assert weak.d_star == general.d_star

    def test_small_lambda_relaxes_the_window(self):
        # Mass at 2 and 5: rejected at lambda=1 (window 4) but accepted
        # at lambda=1/2 (window ceil(3 * 2) = 6 covers everything).
        spread = dist([0, 0.5, 0, 0, 0.5])
        assert not gdcl_test(spread, 0.06, 0.0, delay_factor=1.0).accepted
        assert gdcl_test(spread, 0.06, 0.0, delay_factor=0.5).accepted

    def test_large_lambda_tightens_the_window(self):
        # Mass at 3 and 6 of 8: accepted at lambda=1 (window 6) but
        # rejected at lambda=2 (window ceil(4.5) = 5 misses symbol 6).
        pmf = [0, 0, 0.6, 0, 0, 0.4, 0, 0]
        assert gdcl_test(dist(pmf), 0.06, 0.0, delay_factor=1.0).accepted
        assert not gdcl_test(dist(pmf), 0.06, 0.0, delay_factor=2.0).accepted

    def test_invalid_lambda_rejected(self):
        with pytest.raises(ValueError):
            gdcl_test(dist([1.0]), 0.06, 0.0, delay_factor=0)

    def test_name_records_lambda(self):
        result = gdcl_test(dist([0, 0, 1.0]), 0.06, 0.0, delay_factor=2.0)
        assert "lambda=2" in result.test_name


class TestTheoremProperties:
    """Soundness: if a true (strong/weak) DCL generated G, the test accepts."""

    @settings(max_examples=60, deadline=None)
    @given(
        d_star=st.integers(min_value=1, max_value=5),
        spread=st.floats(min_value=0.0, max_value=1.0),
        n_symbols=st.integers(min_value=5, max_value=12),
    )
    def test_strong_dcl_always_accepted(self, d_star, spread, n_symbols):
        # A strong DCL puts all loss mass in [d*, min(2 d*, M)].
        d_star = min(d_star, n_symbols)
        top = min(2 * d_star, n_symbols)
        pmf = np.zeros(n_symbols)
        pmf[d_star - 1] = 1.0 - spread
        pmf[top - 1] += spread
        result = sdcl_test(DelayDistribution(pmf))
        assert result.accepted

    @settings(max_examples=60, deadline=None)
    @given(
        beta0=st.floats(min_value=0.01, max_value=0.3),
        minor=st.floats(min_value=0.0, max_value=0.9),
        q_sym=st.integers(min_value=2, max_value=6),
    )
    def test_weak_dcl_always_accepted(self, beta0, minor, q_sym):
        # Mass below the dominant symbol at most beta0 (strictly), the
        # rest within [q_sym, 2 q_sym]; Theorem 2 accepts.
        n_symbols = 12
        minor_mass = minor * beta0 * 0.99
        pmf = np.zeros(n_symbols)
        pmf[0] = minor_mass
        pmf[q_sym - 1] = 1.0 - minor_mass
        result = wdcl_test(DelayDistribution(pmf), beta0=beta0, beta1=0.0)
        assert result.accepted
