"""Tests for the end-to-end identification pipeline."""

import numpy as np
import pytest

from repro.core.identify import (
    IdentificationReport,
    IdentifyConfig,
    estimate_bound,
    identify,
)
from repro.models.base import EMConfig
from repro.netsim.trace import PathObservation, ProbeRecord, ProbeTrace


def strong_observation(n=2000, q_k=0.1, base=0.02, seed=0):
    """Synthetic path: single dominant queue; losses only at its top."""
    rng = np.random.default_rng(seed)
    send = np.arange(n) * 0.02
    delays = np.empty(n)
    queue = 0.0
    for i in range(n):
        queue = min(q_k, max(0.0, queue + rng.uniform(-0.012, 0.015)))
        if queue >= q_k - 1e-12 and rng.random() < 0.7:
            delays[i] = np.nan
        else:
            delays[i] = base + queue
    return PathObservation(send, delays)


def two_population_observation(n=3000, seed=0):
    """Two independently congested queues: no dominant link."""
    rng = np.random.default_rng(seed)
    send = np.arange(n) * 0.02
    delays = np.empty(n)
    q_small, q_big = 0.04, 0.3
    queue_a = queue_b = 0.0
    for i in range(n):
        # Alternating congestion episodes.
        phase = (i // 300) % 2
        if phase == 0:
            queue_a = min(q_small, queue_a + rng.uniform(-0.004, 0.006))
            queue_b = max(0.0, queue_b - 0.01)
        else:
            queue_b = min(q_big, queue_b + rng.uniform(-0.02, 0.03))
            queue_a = max(0.0, queue_a - 0.004)
        queue_a = max(0.0, queue_a)
        queue_b = max(0.0, queue_b)
        lost_a = queue_a >= q_small - 1e-12 and rng.random() < 0.5
        lost_b = queue_b >= q_big - 1e-12 and rng.random() < 0.5
        if lost_a or lost_b:
            delays[i] = np.nan
        else:
            delays[i] = 0.02 + queue_a + queue_b
    return PathObservation(send, delays)


@pytest.fixture
def fast_config():
    return IdentifyConfig(em=EMConfig(max_iter=50, tol=1e-3))


class TestIdentify:
    def test_strong_case_accepted(self, fast_config):
        report = identify(strong_observation(), fast_config)
        assert report.verdict == "strong"
        assert report.sdcl.accepted
        assert report.wdcl.accepted
        assert report.dominant_link_exists

    def test_no_dcl_case_rejected(self, fast_config):
        report = identify(two_population_observation(), fast_config)
        assert not report.wdcl.accepted
        assert report.verdict == "none"

    def test_accepts_probe_trace_input(self, fast_config):
        trace = ProbeTrace(["l0"], 0.02, 0.02, 10)
        rng = np.random.default_rng(3)
        queue = 0.0
        for i in range(1500):
            queue = min(0.1, max(0.0, queue + rng.uniform(-0.012, 0.015)))
            lost = queue >= 0.1 - 1e-12 and rng.random() < 0.7
            trace.append(ProbeRecord(i * 0.02, (queue,), 0 if lost else -1))
        report = identify(trace, fast_config)
        assert isinstance(report, IdentificationReport)
        assert report.verdict == "strong"

    def test_rejects_unknown_input_type(self, fast_config):
        with pytest.raises(TypeError):
            identify([1, 2, 3], fast_config)

    def test_hmm_model_selectable(self):
        config = IdentifyConfig(model="hmm", em=EMConfig(max_iter=30))
        report = identify(strong_observation(), config)
        assert "HMM" in report.distribution.label

    def test_invalid_model_rejected(self):
        with pytest.raises(ValueError):
            IdentifyConfig(model="lstm")

    def test_summary_contains_tests_and_verdict(self, fast_config):
        report = identify(strong_observation(), fast_config)
        text = report.summary()
        assert "SDCL-Test" in text
        assert "WDCL-Test" in text
        assert "verdict" in text

    def test_report_exposes_fit_diagnostics(self, fast_config):
        report = identify(strong_observation(), fast_config)
        assert report.fitted.n_iter >= 1
        assert len(report.fitted.log_likelihoods) >= 1


class TestEstimateBound:
    def test_strong_bound_dominates_true_qk(self, fast_config):
        observation = strong_observation(q_k=0.1)
        bound = estimate_bound(observation, "strong", fast_config,
                               n_symbols=20)
        assert bound.seconds is not None
        assert bound.seconds >= 0.1 - 0.01
        # And it is reasonably tight: within two fine bins.
        assert bound.seconds <= 0.1 + 0.03

    def test_weak_bound_methods(self, fast_config):
        observation = strong_observation(q_k=0.1, seed=2)
        component = estimate_bound(observation, "weak", fast_config,
                                   n_symbols=20, use_component_heuristic=True)
        quantile = estimate_bound(observation, "weak", fast_config,
                                  n_symbols=20, use_component_heuristic=False)
        assert component.method == "connected-component"
        assert quantile.method == "weak"

    def test_no_dcl_rejected(self, fast_config):
        with pytest.raises(ValueError):
            estimate_bound(strong_observation(), "none", fast_config)
