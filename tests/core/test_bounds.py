"""Tests for the maximum queuing delay bounds (Section IV-B)."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.bounds import (
    connected_component_bound,
    pmf_components,
    strong_dcl_bound,
    weak_dcl_bound,
)
from repro.core.discretize import DelayDiscretizer
from repro.core.distributions import DelayDistribution


def dist(pmf, queuing_range=1.0):
    disc = DelayDiscretizer(len(pmf), 0.0, queuing_range)
    return DelayDistribution(np.asarray(pmf, float), discretizer=disc)


class TestStrongBound:
    def test_bound_at_support_minimum(self):
        bound = strong_dcl_bound(dist([0, 0, 0.6, 0.4, 0]))
        assert bound.symbol == 3
        assert bound.seconds == pytest.approx(3 / 5)

    def test_bound_dominates_true_qk(self):
        # If all losses occur at the DCL, every lost probe's delay is at
        # least Q_k, so the smallest positive symbol's upper edge bounds it.
        q_k = 0.47
        disc = DelayDiscretizer(10, 0.0, 1.0)
        delays = q_k + np.random.default_rng(0).uniform(0, 0.3, size=200)
        symbols = disc.symbols_of(delays)
        distribution = DelayDistribution.from_samples(symbols, 10,
                                                      discretizer=disc)
        bound = strong_dcl_bound(distribution)
        assert bound.seconds >= q_k

    def test_without_discretizer_seconds_is_none(self):
        bound = strong_dcl_bound(DelayDistribution([0, 1.0]))
        assert bound.seconds is None
        assert bound.symbol == 2


class TestWeakBound:
    def test_skips_minor_mass(self):
        bound = weak_dcl_bound(dist([0.04, 0, 0, 0.96, 0]), beta0=0.06)
        assert bound.symbol == 4

    def test_counts_mass_at_beta0(self):
        bound = weak_dcl_bound(dist([0.06, 0, 0, 0.94, 0]), beta0=0.06)
        assert bound.symbol == 1

    def test_invalid_beta0(self):
        with pytest.raises(ValueError):
            weak_dcl_bound(dist([1.0]), beta0=0.0)


class TestComponents:
    def test_single_component(self):
        comps = pmf_components(np.array([0, 0.5, 0.5, 0]), 1e-6)
        assert comps == [(1, 3, pytest.approx(1.0))]

    def test_multiple_components(self):
        comps = pmf_components(np.array([0.2, 0, 0, 0.3, 0.5]), 1e-6)
        assert len(comps) == 2
        assert comps[0][:2] == (0, 1)
        assert comps[1][:2] == (3, 5)

    def test_component_at_end(self):
        comps = pmf_components(np.array([0, 0, 1.0]), 1e-6)
        assert comps == [(2, 3, pytest.approx(1.0))]

    def test_epsilon_separates(self):
        pmf = np.array([0.5, 1e-4, 0.5])
        assert len(pmf_components(pmf, 1e-3)) == 2
        assert len(pmf_components(pmf, 1e-6)) == 1


class TestComponentBound:
    def test_paper_fig7_structure(self):
        # Minor mass low, dominant connected component higher up: the
        # bound anchors at the component's first significant bin.
        pmf = np.zeros(40)
        pmf[4] = 0.03                      # stray minor mass
        pmf[30:36] = [0.2, 0.3, 0.2, 0.15, 0.1, 0.02]
        bound = connected_component_bound(dist(pmf, queuing_range=0.4))
        assert bound.symbol == 31
        assert bound.seconds == pytest.approx(31 * 0.01)

    def test_significance_threshold_skips_trace_mass(self):
        pmf = np.zeros(10)
        pmf[5] = 0.005                    # insignificant leading bin
        pmf[6:8] = [0.5, 0.495]
        bound = connected_component_bound(dist(pmf), mass_epsilon=1e-4,
                                          significance=0.01)
        assert bound.symbol == 7

    def test_all_mass_significant_uses_component_start(self):
        pmf = np.zeros(10)
        pmf[3:5] = 0.5
        bound = connected_component_bound(dist(pmf))
        assert bound.symbol == 4

    def test_no_components_raises(self):
        distribution = dist([0.2] * 5)
        with pytest.raises(ValueError):
            connected_component_bound(distribution, mass_epsilon=0.5)

    @settings(max_examples=40, deadline=None)
    @given(
        start=st.integers(min_value=0, max_value=30),
        width=st.integers(min_value=1, max_value=8),
        minor=st.floats(min_value=0.0, max_value=0.04),
    )
    def test_heaviest_component_always_wins(self, start, width, minor):
        pmf = np.zeros(40)
        stop = min(40, start + width)
        pmf[start:stop] = (1.0 - minor) / (stop - start)
        minor_bin = (start + 20) % 40
        if not (start <= minor_bin < stop):
            pmf[minor_bin] = minor
        bound = connected_component_bound(dist(pmf, queuing_range=4.0),
                                          significance=0.0)
        assert start + 1 <= bound.symbol <= stop
