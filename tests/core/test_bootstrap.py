"""Tests for the block-bootstrap confidence machinery."""

import numpy as np
import pytest

from repro.core.bootstrap import bootstrap_identification
from repro.core.identify import IdentifyConfig
from repro.models.base import EMConfig
from repro.netsim.trace import PathObservation


def strong_observation(n=2500, q_k=0.1, seed=0):
    rng = np.random.default_rng(seed)
    send = np.arange(n) * 0.02
    delays = np.empty(n)
    queue = 0.0
    for i in range(n):
        queue = min(q_k, max(0.0, queue + rng.uniform(-0.012, 0.015)))
        if queue >= q_k - 1e-12 and rng.random() < 0.7:
            delays[i] = np.nan
        else:
            delays[i] = 0.02 + queue
    return PathObservation(send, delays)


@pytest.fixture(scope="module")
def result():
    config = IdentifyConfig(em=EMConfig(max_iter=30, tol=1e-2))
    return bootstrap_identification(
        strong_observation(), config, n_replicates=8, seed=3,
        replicate_max_iter=15,
    )


class TestBootstrap:
    def test_replicate_count(self, result):
        assert result.n_replicates == 8
        assert result.pmfs.shape == (8, 5)

    def test_strong_case_has_high_acceptance(self, result):
        # Every replicate of a clean strong case should accept.
        assert result.wdcl_acceptance_rate >= 0.75
        assert result.sdcl_acceptance_rate >= 0.5

    def test_pmf_bands_bracket_the_mode(self, result):
        lower, upper = result.pmf_interval(0.9)
        assert (lower <= upper + 1e-12).all()
        # The dominant symbol's band sits high.
        assert upper[-1] > 0.9

    def test_invalid_interval_level(self, result):
        with pytest.raises(ValueError):
            result.pmf_interval(1.5)

    def test_invalid_replicate_count(self):
        with pytest.raises(ValueError):
            bootstrap_identification(strong_observation(), n_replicates=0)

    def test_summary_renders(self, result):
        text = result.summary()
        assert "SDCL acceptance rate" in text
        assert "90% bands" in text

    def test_deterministic_given_seed(self):
        config = IdentifyConfig(em=EMConfig(max_iter=15, tol=1e-2))
        a = bootstrap_identification(strong_observation(), config,
                                     n_replicates=3, seed=7,
                                     replicate_max_iter=10)
        b = bootstrap_identification(strong_observation(), config,
                                     n_replicates=3, seed=7,
                                     replicate_max_iter=10)
        np.testing.assert_array_equal(a.pmfs, b.pmfs)

    def test_block_length_default_scales_with_trace(self):
        config = IdentifyConfig(em=EMConfig(max_iter=10, tol=1e-2))
        result = bootstrap_identification(
            strong_observation(n=400), config, n_replicates=2, seed=1,
            replicate_max_iter=8,
        )
        assert result.block_length <= 100
