"""Tests for delay discretization."""

import numpy as np
import pytest

from repro.core.discretize import DelayDiscretizer
from repro.models.base import LOSS
from repro.netsim.trace import PathObservation


@pytest.fixture
def disc():
    # P = 10 ms, D_max = 60 ms, M = 5: bins of 10 ms queuing delay.
    return DelayDiscretizer(n_symbols=5, propagation_delay=0.010,
                            max_delay=0.060)


class TestConstruction:
    def test_bin_width(self, disc):
        assert disc.bin_width == pytest.approx(0.010)

    def test_invalid_range_rejected(self):
        with pytest.raises(ValueError):
            DelayDiscretizer(5, propagation_delay=0.05, max_delay=0.05)

    def test_invalid_symbol_count_rejected(self):
        with pytest.raises(ValueError):
            DelayDiscretizer(0, 0.0, 1.0)

    def test_from_observation_uses_min_delay_when_p_unknown(self):
        obs = PathObservation(np.arange(3.0),
                              np.array([0.02, 0.05, np.nan]))
        disc = DelayDiscretizer.from_observation(obs, 5)
        assert disc.propagation_delay == pytest.approx(0.02)
        assert disc.max_delay == pytest.approx(0.05)

    def test_from_observation_prefers_known_p(self):
        obs = PathObservation(np.arange(2.0), np.array([0.02, 0.05]),
                              propagation_delay=0.015)
        disc = DelayDiscretizer.from_observation(obs, 5)
        assert disc.propagation_delay == pytest.approx(0.015)

    def test_from_observation_explicit_override(self):
        obs = PathObservation(np.arange(2.0), np.array([0.02, 0.05]),
                              propagation_delay=0.015)
        disc = DelayDiscretizer.from_observation(obs, 5,
                                                 propagation_delay=0.01)
        assert disc.propagation_delay == pytest.approx(0.01)


class TestSymbolization:
    def test_bin_edges_are_half_open_upper(self, disc):
        # Queuing delay in ((m-1)w, mw] -> symbol m.
        assert disc.symbol_of(0.010 + 0.010) == 1
        assert disc.symbol_of(0.010 + 0.0101) == 2
        assert disc.symbol_of(0.010 + 0.050) == 5

    def test_zero_queuing_maps_to_symbol_one(self, disc):
        assert disc.symbol_of(0.010) == 1

    def test_clipping_below_and_above(self, disc):
        assert disc.symbol_of(0.005) == 1      # below P
        assert disc.symbol_of(0.500) == 5      # beyond D_max

    def test_losses_map_to_loss_marker(self, disc):
        symbols = disc.symbols_of([0.02, np.nan, 0.03])
        assert symbols[1] == LOSS
        assert symbols[0] != LOSS

    def test_observation_sequence_roundtrip(self, disc):
        obs = PathObservation(np.arange(4.0),
                              np.array([0.015, np.nan, 0.035, 0.055]))
        seq = disc.observation_sequence(obs)
        np.testing.assert_array_equal(seq.symbols, [1, LOSS, 3, 5])
        assert seq.n_symbols == 5


class TestUnitConversion:
    def test_upper_edge(self, disc):
        assert disc.queuing_upper_edge(3) == pytest.approx(0.030)

    def test_lower_edge(self, disc):
        assert disc.queuing_lower_edge(3) == pytest.approx(0.020)

    def test_midpoint(self, disc):
        assert disc.queuing_midpoint(3) == pytest.approx(0.025)

    def test_out_of_range_symbol_rejected(self, disc):
        with pytest.raises(ValueError):
            disc.queuing_upper_edge(0)
        with pytest.raises(ValueError):
            disc.queuing_upper_edge(6)

    def test_symbolize_then_convert_bounds_delay(self, disc):
        # The true queuing delay always lies within its symbol's bin.
        for queuing in np.linspace(0.001, 0.049, 25):
            symbol = disc.symbol_of(0.010 + queuing)
            assert disc.queuing_lower_edge(symbol) <= queuing + 1e-12
            assert queuing <= disc.queuing_upper_edge(symbol) + 1e-12
