"""Tests for TCP Tahoe and delayed ACKs."""

import pytest

from repro.netsim.queues import DropTailQueue
from repro.netsim.tcp import TcpReceiver, TcpSender, open_tcp_connection
from repro.netsim.topology import Network


def build_path(bandwidth=1e6, buffer_bytes=10_000, seed=0):
    net = Network(seed=seed)
    net.add_host("a")
    net.add_host("b")
    net.add_link("a", "b", bandwidth, 0.005, DropTailQueue(buffer_bytes))
    net.add_link("b", "a", bandwidth, 0.005, DropTailQueue(1_000_000))
    net.compute_routes()
    return net


class TestTahoe:
    def test_invalid_variant_rejected(self):
        net = build_path()
        with pytest.raises(ValueError):
            open_tcp_connection(net.nodes["a"], net.nodes["b"], flow_id="f",
                                variant="cubic")

    def test_tahoe_completes_transfers(self):
        net = build_path(buffer_bytes=5_000)
        done = []
        sender = open_tcp_connection(
            net.nodes["a"], net.nodes["b"], flow_id="f", variant="tahoe",
            total_segments=150, on_complete=lambda: done.append(1),
        )
        sender.start()
        net.run(until=120.0)
        assert done

    def test_tahoe_never_enters_fast_recovery(self):
        net = build_path(buffer_bytes=5_000)
        sender = open_tcp_connection(net.nodes["a"], net.nodes["b"],
                                     flow_id="f", variant="tahoe")
        sender.start()
        recovery_seen = []
        for _ in range(60):
            net.run(until=net.sim.now + 0.5)
            recovery_seen.append(sender.in_fast_recovery)
        assert sender.fast_retransmits > 0  # losses did occur
        assert not any(recovery_seen)

    def test_tahoe_slower_than_reno_under_loss(self):
        # The classic comparison: with the same loss environment Tahoe's
        # cwnd resets cost throughput relative to Reno's fast recovery.
        goodput = {}
        for variant in ("reno", "tahoe"):
            net = build_path(buffer_bytes=5_000, seed=2)
            sender = open_tcp_connection(net.nodes["a"], net.nodes["b"],
                                         flow_id="f", variant=variant)
            sender.start()
            net.run(until=60.0)
            goodput[variant] = sender.highest_acked
        assert goodput["reno"] >= goodput["tahoe"]


class TestDelayedAck:
    def test_fewer_acks_than_segments(self):
        net = build_path(bandwidth=10e6, buffer_bytes=1_000_000)
        receiver = TcpReceiver(net.nodes["b"], delayed_ack=True)
        sender = TcpSender(net.nodes["a"], dst="b", dst_port=receiver.port,
                           flow_id="f", total_segments=200)
        sender.start()
        net.run(until=20.0)
        assert sender.completed
        # Roughly one ACK per two segments (plus timer flushes).
        assert receiver.acks_sent < 0.75 * receiver.segments_received

    def test_ack_timer_flushes_odd_segment(self):
        net = build_path(bandwidth=10e6, buffer_bytes=1_000_000)
        receiver = TcpReceiver(net.nodes["b"], delayed_ack=True,
                               ack_delay=0.1)
        sender = TcpSender(net.nodes["a"], dst="b", dst_port=receiver.port,
                           flow_id="f", total_segments=1)
        sender.start()
        net.run(until=5.0)
        assert sender.completed  # the lone segment was eventually ACKed
        assert receiver.acks_sent == 1

    def test_out_of_order_still_acked_immediately(self):
        net = build_path(buffer_bytes=4_000, seed=3)
        sender = open_tcp_connection(net.nodes["a"], net.nodes["b"],
                                     flow_id="f", delayed_ack=True)
        sender.start()
        net.run(until=30.0)
        # Losses occurred and fast retransmit still fired: duplicate ACKs
        # must have been immediate despite delayed ACKs.
        assert sender.fast_retransmits > 0

    def test_delayed_ack_transfer_completes(self):
        net = build_path(buffer_bytes=5_000, seed=4)
        done = []
        sender = open_tcp_connection(
            net.nodes["a"], net.nodes["b"], flow_id="f", delayed_ack=True,
            total_segments=100, on_complete=lambda: done.append(1),
        )
        sender.start()
        net.run(until=120.0)
        assert done
