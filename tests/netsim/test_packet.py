"""Tests for the packet model."""

import pytest

from repro.netsim.packet import Packet, PacketKind


class TestPacket:
    def test_unique_ids(self):
        a = Packet(src="a", dst="b", size=10)
        b = Packet(src="a", dst="b", size=10)
        assert a.uid != b.uid

    def test_fields_stored(self):
        packet = Packet(
            src="a", dst="b", size=100, kind=PacketKind.ACK,
            flow_id="f", seq=7, created_at=1.5, dst_port=3, payload="x",
        )
        assert packet.src == "a"
        assert packet.dst == "b"
        assert packet.size == 100
        assert packet.kind == "ack"
        assert packet.flow_id == "f"
        assert packet.seq == 7
        assert packet.created_at == 1.5
        assert packet.dst_port == 3
        assert packet.payload == "x"

    def test_zero_size_rejected(self):
        with pytest.raises(ValueError):
            Packet(src="a", dst="b", size=0)

    def test_negative_size_rejected(self):
        with pytest.raises(ValueError):
            Packet(src="a", dst="b", size=-5)

    def test_size_coerced_to_int(self):
        assert Packet(src="a", dst="b", size=10.0).size == 10

    def test_default_kind_is_data(self):
        assert Packet(src="a", dst="b", size=10).kind == PacketKind.DATA
