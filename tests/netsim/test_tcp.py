"""Tests for the TCP Reno implementation."""

import pytest

from repro.netsim.node import Host
from repro.netsim.queues import DropTailQueue
from repro.netsim.tcp import TcpReceiver, TcpSender, open_tcp_connection
from repro.netsim.topology import Network


def build_path(bandwidth=1e6, buffer_bytes=10_000, prop=0.005, seed=0):
    net = Network(seed=seed)
    net.add_host("a")
    net.add_host("b")
    net.add_link("a", "b", bandwidth, prop, DropTailQueue(buffer_bytes))
    net.add_link("b", "a", bandwidth, prop, DropTailQueue(1_000_000))
    net.compute_routes()
    return net


class TestTransferCompletion:
    def test_finite_transfer_completes(self):
        net = build_path()
        done = []
        sender = open_tcp_connection(
            net.nodes["a"], net.nodes["b"], flow_id="f",
            total_segments=50, on_complete=lambda: done.append(net.sim.now),
        )
        sender.start()
        net.run(until=60.0)
        assert done, "transfer did not complete"
        assert sender.completed
        assert sender.highest_acked == 50

    def test_receiver_sees_all_segments_in_order(self):
        net = build_path()
        receiver = TcpReceiver(net.nodes["b"])
        sender = TcpSender(net.nodes["a"], dst="b", dst_port=receiver.port,
                           flow_id="f", total_segments=30)
        sender.start()
        net.run(until=60.0)
        assert receiver.expected_seq == 30

    def test_completion_callback_fires_once(self):
        net = build_path()
        done = []
        sender = open_tcp_connection(
            net.nodes["a"], net.nodes["b"], flow_id="f",
            total_segments=10, on_complete=lambda: done.append(1),
        )
        sender.start()
        net.run(until=60.0)
        assert done == [1]

    def test_throughput_approaches_capacity(self):
        # A long transfer over a 1 Mb/s link should move ~1 Mb/s of goodput.
        net = build_path(buffer_bytes=20_000)
        sender = open_tcp_connection(net.nodes["a"], net.nodes["b"], flow_id="f")
        sender.start()
        net.run(until=50.0)
        goodput_bps = sender.highest_acked * 1000 * 8 / 50.0
        assert goodput_bps > 0.7e6

    def test_transfer_over_lossy_bottleneck_still_completes(self):
        net = build_path(buffer_bytes=3_000)  # 3-packet buffer: heavy loss
        done = []
        sender = open_tcp_connection(
            net.nodes["a"], net.nodes["b"], flow_id="f",
            total_segments=100, on_complete=lambda: done.append(1),
        )
        sender.start()
        net.run(until=300.0)
        assert done


class TestCongestionControl:
    def test_slow_start_doubles_window(self):
        net = build_path(bandwidth=10e6, buffer_bytes=1_000_000)
        sender = open_tcp_connection(net.nodes["a"], net.nodes["b"], flow_id="f")
        sender.start()
        net.run(until=0.5)
        # Several RTTs (~11 ms each) of pure slow start: cwnd grew well
        # past the initial 1.
        assert sender.cwnd > 8

    def test_losses_trigger_fast_retransmit(self):
        net = build_path(buffer_bytes=5_000)
        sender = open_tcp_connection(net.nodes["a"], net.nodes["b"], flow_id="f")
        sender.start()
        net.run(until=30.0)
        assert sender.fast_retransmits > 0

    def test_ssthresh_updated_on_loss(self):
        net = build_path(buffer_bytes=5_000)
        sender = open_tcp_connection(net.nodes["a"], net.nodes["b"], flow_id="f")
        initial_ssthresh = sender.ssthresh
        sender.start()
        net.run(until=30.0)
        assert sender.ssthresh != initial_ssthresh

    def test_rtt_estimator_converges(self):
        net = build_path(bandwidth=10e6, buffer_bytes=1_000_000)
        sender = open_tcp_connection(net.nodes["a"], net.nodes["b"], flow_id="f")
        sender.start()
        net.run(until=2.0)
        # Path RTT is ~10.8 ms idle; srtt should land in the right decade.
        assert sender.srtt is not None
        assert 0.005 < sender.srtt < 0.2

    def test_no_timeouts_on_clean_path(self):
        net = build_path(bandwidth=10e6, buffer_bytes=1_000_000)
        sender = open_tcp_connection(
            net.nodes["a"], net.nodes["b"], flow_id="f", total_segments=200
        )
        sender.start()
        net.run(until=10.0)
        assert sender.timeouts == 0
        assert sender.completed

    def test_flight_size_never_negative(self):
        net = build_path(buffer_bytes=5_000)
        sender = open_tcp_connection(net.nodes["a"], net.nodes["b"], flow_id="f")
        sender.start()
        net.run(until=10.0)
        assert sender._flight_size() >= 0


class TestReceiver:
    def test_out_of_order_reassembly(self, sim):
        host = Host(sim, "b")
        receiver = TcpReceiver(host)
        from repro.netsim.packet import Packet, PacketKind

        def data(seq):
            return Packet(src="a", dst="b", dst_port=receiver.port, size=1040,
                          kind=PacketKind.DATA, flow_id="f", seq=seq, payload=1)

        receiver.handle_packet(data(0))
        receiver.handle_packet(data(2))  # hole at 1
        assert receiver.expected_seq == 1
        receiver.handle_packet(data(1))
        assert receiver.expected_seq == 3

    def test_duplicate_segments_counted(self, sim):
        host = Host(sim, "b")
        receiver = TcpReceiver(host)
        from repro.netsim.packet import Packet, PacketKind

        packet = Packet(src="a", dst="b", dst_port=receiver.port, size=1040,
                        kind=PacketKind.DATA, flow_id="f", seq=0, payload=1)
        receiver.handle_packet(packet)
        receiver.handle_packet(packet)
        assert receiver.duplicate_segments == 1
