"""Property-based tests (hypothesis) for simulator invariants."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.netsim.engine import Simulator
from repro.netsim.link import Link
from repro.netsim.packet import Packet
from repro.netsim.queues import DropTailQueue, REDQueue


class Collector:
    def __init__(self, sim):
        self.sim = sim
        self.received = []

    def receive(self, packet):
        self.received.append((self.sim.now, packet))


def drive_link(sizes, capacity_bytes=10_000, bandwidth=1e6, queue_cls=None):
    sim = Simulator(0)
    sink = Collector(sim)
    queue = (queue_cls or DropTailQueue)(capacity_bytes)
    link = Link(sim, "a->b", "a", sink, bandwidth, 0.005, queue)
    admitted = sum(link.send(Packet(src="a", dst="b", size=s, seq=i))
                   for i, s in enumerate(sizes))
    sim.run()
    return link, sink, admitted


sizes_strategy = st.lists(st.integers(min_value=40, max_value=1500),
                          min_size=1, max_size=60)


class TestLinkInvariants:
    @settings(max_examples=50, deadline=None)
    @given(sizes=sizes_strategy)
    def test_conservation(self, sizes):
        link, sink, admitted = drive_link(sizes)
        assert admitted + link.queue.drops == len(sizes)
        assert len(sink.received) == admitted

    @settings(max_examples=50, deadline=None)
    @given(sizes=sizes_strategy)
    def test_fifo_delivery(self, sizes):
        _, sink, _ = drive_link(sizes)
        seqs = [p.seq for _, p in sink.received]
        assert seqs == sorted(seqs)

    @settings(max_examples=50, deadline=None)
    @given(sizes=sizes_strategy)
    def test_work_conservation(self, sizes):
        # Every admitted byte occupies the wire exactly size*8/bw seconds;
        # the last delivery time is at least the total service demand.
        link, sink, _ = drive_link(sizes)
        if not sink.received:
            return
        total_service = sum(p.size for _, p in sink.received) * 8 / 1e6
        last_delivery = sink.received[-1][0]
        assert last_delivery >= total_service - 1e-9
        # And no idling while work is queued: back-to-back arrivals mean
        # the span equals service + one propagation.
        assert last_delivery == pytest.approx(total_service + 0.005)

    @settings(max_examples=50, deadline=None)
    @given(sizes=sizes_strategy)
    def test_delivery_times_strictly_ordered(self, sizes):
        _, sink, _ = drive_link(sizes)
        times = [t for t, _ in sink.received]
        assert all(b > a for a, b in zip(times, times[1:]))

    @settings(max_examples=30, deadline=None)
    @given(sizes=sizes_strategy, seed=st.integers(0, 20))
    def test_red_conservation(self, sizes, seed):
        link, sink, admitted = drive_link(
            sizes, queue_cls=lambda c: REDQueue(c, min_th=3, max_th=9)
        )
        assert admitted + link.queue.drops == len(sizes)
        assert len(sink.received) == admitted

    @settings(max_examples=50, deadline=None)
    @given(sizes=sizes_strategy)
    def test_backlog_returns_to_zero(self, sizes):
        link, _, _ = drive_link(sizes)
        assert link.queue.backlog_bytes == 0
        assert link.queue.backlog_packets == 0
        assert link.service_residual() == 0.0


class TestDiscretizerProperties:
    @settings(max_examples=60, deadline=None)
    @given(
        delays=st.lists(
            st.floats(min_value=0.011, max_value=0.5, allow_nan=False),
            min_size=2, max_size=100,
        ),
        n_symbols=st.integers(min_value=1, max_value=40),
    )
    def test_symbols_in_range_and_monotone(self, delays, n_symbols):
        from repro.core.discretize import DelayDiscretizer

        delays = np.asarray(delays)
        disc = DelayDiscretizer(n_symbols, 0.01, delays.max() + 1e-6)
        symbols = disc.symbols_of(delays)
        assert ((symbols >= 1) & (symbols <= n_symbols)).all()
        # Symbolization preserves order: larger delay, no smaller symbol.
        order = np.argsort(delays, kind="stable")
        assert (np.diff(symbols[order]) >= 0).all()

    @settings(max_examples=60, deadline=None)
    @given(
        queuing=st.floats(min_value=1e-6, max_value=0.39),
        n_symbols=st.integers(min_value=1, max_value=40),
    )
    def test_bin_edges_bracket_value(self, queuing, n_symbols):
        from repro.core.discretize import DelayDiscretizer

        disc = DelayDiscretizer(n_symbols, 0.01, 0.41)
        symbol = disc.symbol_of(0.01 + queuing)
        assert disc.queuing_lower_edge(symbol) <= queuing + 1e-9
        assert queuing <= disc.queuing_upper_edge(symbol) + 1e-9
