"""Tests for probe streams and virtual-probe semantics."""

import numpy as np
import pytest

from repro.netsim.probes import LossPairProber, PeriodicProber
from repro.netsim.queues import DropTailQueue
from repro.netsim.topology import Network, chain_network
from repro.netsim.traffic import CbrSource, UdpSink


def saturated_single_link(buffer_bytes=5_000, rate=1e6, overload=1.5, seed=0):
    """One bottleneck driven to sustained overload (full queue)."""
    net = Network(seed=seed)
    net.add_host("a")
    net.add_host("b")
    net.add_link("a", "b", rate, 0.005, DropTailQueue(buffer_bytes))
    net.add_link("b", "a", rate, 0.005, DropTailQueue(1_000_000))
    net.compute_routes()
    sink = UdpSink(net.nodes["b"])
    CbrSource(net.nodes["a"], "b", sink.port, "load",
              rate_bps=overload * rate, packet_size=1000)
    return net


class TestPeriodicProber:
    def test_probe_count_matches_duration(self, small_chain):
        prober = PeriodicProber(small_chain, "src0_0", "snk3_0",
                                interval=0.02, start=0.0, stop=10.0)
        small_chain.run(until=11.0)
        assert len(prober.trace) == pytest.approx(500, abs=2)

    def test_send_times_are_periodic(self, small_chain):
        prober = PeriodicProber(small_chain, "src0_0", "snk3_0",
                                interval=0.02, stop=1.0)
        small_chain.run(until=2.0)
        diffs = np.diff(prober.trace.send_times)
        np.testing.assert_allclose(diffs, 0.02, atol=1e-9)

    def test_base_delay_matches_idle_path(self, small_chain):
        prober = PeriodicProber(small_chain, "src0_0", "snk3_0", stop=1.0)
        small_chain.run(until=2.0)
        # No cross traffic: every observed delay equals the base delay.
        obs = prober.trace.observation()
        np.testing.assert_allclose(obs.observed, prober.trace.base_delay,
                                   atol=1e-9)

    def test_losses_occur_on_saturated_link(self):
        net = saturated_single_link()
        prober = PeriodicProber(net, "a", "b", stop=20.0)
        net.run(until=21.0)
        assert prober.trace.loss_rate > 0.3

    def test_lost_probe_records_full_queue_delay(self):
        net = saturated_single_link(buffer_bytes=5_000, rate=1e6)
        prober = PeriodicProber(net, "a", "b", stop=20.0)
        net.run(until=21.0)
        trace = prober.trace
        lost_vq = trace.virtual_queuing_delays[trace.lost]
        # Full queue of 5 x 1000 B at 1 Mb/s = 40 ms (+ residual < 8 ms).
        assert lost_vq.min() >= 0.040 - 1e-9
        assert lost_vq.max() <= 0.050

    def test_loss_mark_taken_at_most_once(self):
        # Two saturated links in series: loss_hop must be a single index.
        net = chain_network([1e6, 1e6], [5_000, 5_000], seed=3)
        sink_a = UdpSink(net.nodes["snk1_0"])
        CbrSource(net.nodes["src0_0"], "snk1_0", sink_a.port, "l1",
                  rate_bps=1.5e6, packet_size=1000)
        sink_b = UdpSink(net.nodes["snk2_0"])
        CbrSource(net.nodes["src1_0"], "snk2_0", sink_b.port, "l2",
                  rate_bps=1.5e6, packet_size=1000)
        prober = PeriodicProber(net, "src0_1", "snk2_1", stop=20.0)
        net.run(until=25.0)
        trace = prober.trace
        assert trace.loss_rate > 0.5
        # Every lost probe has exactly one loss hop, the first full queue.
        hops = trace.loss_hops[trace.lost]
        assert (hops >= 0).all()
        first_chain_hop = trace.link_names.index("r0->r1")
        assert (hops == first_chain_hop).mean() > 0.9

    def test_virtual_probe_continues_past_loss(self):
        net = saturated_single_link()
        prober = PeriodicProber(net, "a", "b", stop=10.0)
        net.run(until=11.0)
        trace = prober.trace
        # Lost probes still have per-hop queuing recorded for every hop.
        lost_records = [r for r in trace.records if r.lost]
        assert lost_records
        assert all(len(r.hop_queuing) == len(trace.link_names)
                   for r in lost_records)

    def test_invalid_interval_rejected(self, small_chain):
        with pytest.raises(ValueError):
            PeriodicProber(small_chain, "src0_0", "snk3_0", interval=0)


class TestLossPairProber:
    def test_pairs_are_recorded(self, small_chain):
        prober = LossPairProber(small_chain, "src0_0", "snk3_0",
                                pair_interval=0.04, stop=2.0)
        small_chain.run(until=3.0)
        assert len(prober.trace) == pytest.approx(50, abs=2)

    def test_pair_probes_sample_similar_state_without_traffic(self, small_chain):
        prober = LossPairProber(small_chain, "src0_0", "snk3_0", stop=2.0)
        small_chain.run(until=3.0)
        for first, second in prober.trace.pairs:
            # The second probe sees one extra (companion) slot per hop:
            # a few probe transmission times, well under a millisecond.
            assert second.total_queuing == pytest.approx(first.total_queuing,
                                                         abs=5e-4)
            assert second.total_queuing >= first.total_queuing

    def test_loss_pairs_capture_companion_delay(self):
        net = saturated_single_link(overload=1.2)
        prober = LossPairProber(net, "a", "b", pair_interval=0.04, stop=60.0)
        net.run(until=61.0)
        delays = prober.trace.loss_pair_delays()
        assert delays.size > 0
        # Companion of a lost probe saw a (nearly) full queue: ~40 ms.
        assert np.median(delays) > 0.030

    def test_loss_rate_counts_both_probes(self):
        net = saturated_single_link()
        prober = LossPairProber(net, "a", "b", stop=20.0)
        net.run(until=21.0)
        assert 0 < prober.trace.loss_rate <= 1

    def test_invalid_interval_rejected(self, small_chain):
        with pytest.raises(ValueError):
            LossPairProber(small_chain, "src0_0", "snk3_0", pair_interval=0)
