"""Tests for the discrete-event engine."""

import numpy as np
import pytest

from repro.netsim.engine import SimulationError, Simulator


class TestScheduling:
    def test_runs_in_time_order(self, sim):
        order = []
        sim.schedule(0.3, lambda: order.append("c"))
        sim.schedule(0.1, lambda: order.append("a"))
        sim.schedule(0.2, lambda: order.append("b"))
        sim.run()
        assert order == ["a", "b", "c"]

    def test_ties_break_by_insertion_order(self, sim):
        order = []
        for name in "abc":
            sim.schedule(1.0, lambda n=name: order.append(n))
        sim.run()
        assert order == ["a", "b", "c"]

    def test_clock_advances_to_event_time(self, sim):
        times = []
        sim.schedule(0.5, lambda: times.append(sim.now))
        sim.run()
        assert times == [0.5]

    def test_negative_delay_rejected(self, sim):
        with pytest.raises(SimulationError):
            sim.schedule(-0.1, lambda: None)

    def test_schedule_in_past_rejected(self, sim):
        sim.schedule(1.0, lambda: None)
        sim.run()
        with pytest.raises(SimulationError):
            sim.schedule_at(0.5, lambda: None)

    def test_events_can_schedule_events(self, sim):
        seen = []

        def first():
            seen.append(sim.now)
            sim.schedule(0.25, lambda: seen.append(sim.now))

        sim.schedule(0.5, first)
        sim.run()
        assert seen == [0.5, 0.75]

    def test_run_until_stops_clock_at_bound(self, sim):
        fired = []
        sim.schedule(2.0, lambda: fired.append(True))
        sim.run(until=1.0)
        assert not fired
        assert sim.now == 1.0
        sim.run(until=3.0)
        assert fired

    def test_run_until_is_inclusive(self, sim):
        fired = []
        sim.schedule(1.0, lambda: fired.append(True))
        sim.run(until=1.0)
        assert fired

    def test_step_runs_exactly_one_event(self, sim):
        seen = []
        sim.schedule(0.1, lambda: seen.append(1))
        sim.schedule(0.2, lambda: seen.append(2))
        assert sim.step()
        assert seen == [1]
        assert sim.step()
        assert seen == [1, 2]
        assert not sim.step()

    def test_processed_event_count(self, sim):
        for _ in range(5):
            sim.schedule(0.1, lambda: None)
        sim.run()
        assert sim.processed_events == 5


class TestCancellation:
    def test_cancelled_event_does_not_fire(self, sim):
        fired = []
        event = sim.schedule(0.1, lambda: fired.append(True))
        event.cancel()
        sim.run()
        assert not fired

    def test_cancel_is_idempotent(self, sim):
        event = sim.schedule(0.1, lambda: None)
        event.cancel()
        event.cancel()
        sim.run()

    def test_cancelled_events_are_skipped_by_step(self, sim):
        seen = []
        event = sim.schedule(0.1, lambda: seen.append("cancelled"))
        sim.schedule(0.2, lambda: seen.append("kept"))
        event.cancel()
        assert sim.step()
        assert seen == ["kept"]


class TestRandomness:
    def test_same_name_returns_same_stream(self, sim):
        assert sim.rng("x") is sim.rng("x")

    def test_streams_are_deterministic_across_simulators(self):
        a = Simulator(seed=5).rng("flow").random(8)
        b = Simulator(seed=5).rng("flow").random(8)
        np.testing.assert_array_equal(a, b)

    def test_different_names_give_different_streams(self):
        sim = Simulator(seed=5)
        a = sim.rng("one").random(8)
        b = sim.rng("two").random(8)
        assert not np.array_equal(a, b)

    def test_different_seeds_give_different_streams(self):
        a = Simulator(seed=1).rng("x").random(8)
        b = Simulator(seed=2).rng("x").random(8)
        assert not np.array_equal(a, b)

    def test_seed_property(self):
        assert Simulator(seed=9).seed == 9
