"""Tests for queue monitoring."""

import pytest

from repro.netsim.monitor import QueueMonitor
from repro.netsim.queues import DropTailQueue
from repro.netsim.topology import Network
from repro.netsim.traffic import CbrSource, UdpSink


def loaded_link(rate=1e6, load=0.5, buffer_bytes=10_000, seed=0):
    net = Network(seed=seed)
    net.add_host("a")
    net.add_host("b")
    net.add_link("a", "b", rate, 0.005, DropTailQueue(buffer_bytes))
    net.compute_routes()
    sink = UdpSink(net.nodes["b"])
    CbrSource(net.nodes["a"], "b", sink.port, "load",
              rate_bps=load * rate, packet_size=1000)
    return net, net.links[("a", "b")]


class TestQueueMonitor:
    def test_utilization_tracks_offered_load(self):
        net, link = loaded_link(load=0.5)
        monitor = QueueMonitor(link, interval=0.003, start=1.0)
        net.run(until=60.0)
        stats = monitor.stats()
        assert stats.utilization == pytest.approx(0.5, abs=0.08)

    def test_idle_link_statistics(self):
        net, link = loaded_link(load=0.01)
        monitor = QueueMonitor(link, interval=0.01, start=0.0)
        net.run(until=20.0)
        stats = monitor.stats()
        assert stats.mean_occupancy_packets < 0.2
        assert stats.full_fraction == 0.0

    def test_full_fraction_matches_probe_loss_on_overload(self):
        # The paper-relevant identity: a periodic ghost probe's loss rate
        # equals the fraction of time the droptail queue is full.
        from repro.netsim.probes import PeriodicProber

        net, link = loaded_link(load=1.5, buffer_bytes=5_000, seed=1)
        monitor = QueueMonitor(link, interval=0.02, start=5.0)
        prober = PeriodicProber(net, "a", "b", interval=0.02, start=5.01)
        net.run(until=60.0)
        stats = monitor.stats()
        assert stats.full_fraction == pytest.approx(prober.trace.loss_rate,
                                                    abs=0.05)
        assert stats.full_fraction > 0.5

    def test_stop_bound_respected(self):
        net, link = loaded_link()
        monitor = QueueMonitor(link, interval=0.01, start=0.0, stop=1.0)
        net.run(until=5.0)
        assert monitor.n_samples == pytest.approx(100, abs=2)

    def test_no_samples_raises(self):
        net, link = loaded_link()
        monitor = QueueMonitor(link, interval=0.01, start=10.0)
        with pytest.raises(ValueError):
            monitor.stats()

    def test_invalid_interval(self):
        net, link = loaded_link()
        with pytest.raises(ValueError):
            QueueMonitor(link, interval=0)


class TestRunnerIntegration:
    def test_runner_collects_chain_statistics(self):
        from repro.experiments import run_scenario, strong_dcl_scenario

        result = run_scenario(strong_dcl_scenario(1.0), seed=2,
                              duration=30.0, warmup=10.0,
                              monitor_queues=True)
        assert set(result.queue_stats) == {"r0->r1", "r1->r2", "r2->r3"}
        bottleneck = result.queue_stats["r2->r3"]
        # The bottleneck is highly utilised; its full-queue fraction is
        # close to the probe loss rate.
        assert bottleneck.utilization > 0.8
        assert bottleneck.full_fraction == pytest.approx(
            result.trace.loss_rate, abs=0.06
        )
        assert result.queue_stats["r0->r1"].utilization < 0.5
