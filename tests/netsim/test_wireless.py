"""Tests for the Gilbert-Elliott wireless link."""

import pytest

from repro.netsim.engine import Simulator
from repro.netsim.packet import Packet
from repro.netsim.probes import PeriodicProber
from repro.netsim.queues import DropTailQueue
from repro.netsim.topology import Network
from repro.netsim.traffic import CbrSource, UdpSink
from repro.netsim.wireless import GilbertElliottLink


def wireless_network(loss_good=0.0, loss_bad=1.0, mean_good=1.0,
                     mean_bad=1.0, seed=0):
    net = Network(seed=seed)
    net.add_host("a")
    net.add_host("b")
    net.add_link(
        "a", "b", 10e6, 0.005, DropTailQueue(1_000_000),
        link_class=GilbertElliottLink,
        loss_good=loss_good, loss_bad=loss_bad,
        mean_good=mean_good, mean_bad=mean_bad,
    )
    net.add_link("b", "a", 10e6, 0.005, DropTailQueue(1_000_000))
    net.compute_routes()
    return net


class TestChannel:
    def test_good_state_is_lossless_when_p_zero(self):
        net = wireless_network(loss_good=0.0, loss_bad=0.0)
        sink = UdpSink(net.nodes["b"])
        CbrSource(net.nodes["a"], "b", sink.port, "cbr", rate_bps=1e5,
                  packet_size=1000)
        net.run(until=20.0)
        link = net.links[("a", "b")]
        assert link.channel_losses == 0
        assert sink.packets_received > 0

    def test_bad_state_drops_packets(self):
        net = wireless_network(loss_good=0.0, loss_bad=0.8,
                               mean_good=0.5, mean_bad=0.5)
        sink = UdpSink(net.nodes["b"])
        CbrSource(net.nodes["a"], "b", sink.port, "cbr", rate_bps=4e5,
                  packet_size=1000)
        net.run(until=60.0)
        link = net.links[("a", "b")]
        assert link.channel_losses > 0
        # Roughly: half the time in the bad state at 80% loss -> ~40%.
        total = link.channel_losses + sink.packets_received
        assert 0.2 < link.channel_losses / total < 0.6

    def test_probes_face_the_same_channel(self):
        net = wireless_network(loss_good=0.0, loss_bad=0.9,
                               mean_good=0.5, mean_bad=0.5)
        prober = PeriodicProber(net, "a", "b", stop=60.0)
        net.run(until=61.0)
        assert 0.2 < prober.trace.loss_rate < 0.7

    def test_wireless_losses_uncorrelated_with_queue(self):
        # Probes lost on the wireless hop record *small* queuing delays —
        # the decorrelation that breaks the paper's droptail premise.
        net = wireless_network(loss_good=0.0, loss_bad=0.9,
                               mean_good=0.5, mean_bad=0.5)
        prober = PeriodicProber(net, "a", "b", stop=30.0)
        net.run(until=31.0)
        trace = prober.trace
        lost_vq = trace.virtual_queuing_delays[trace.lost]
        assert lost_vq.max() < 0.01  # queue never near its ~0.8 s drain

    def test_parameter_validation(self):
        sim = Simulator(0)
        net = Network(sim=sim)
        net.add_host("a")
        net.add_host("b")
        with pytest.raises(ValueError):
            net.add_link("a", "b", 1e6, 0.01, DropTailQueue(1000),
                         link_class=GilbertElliottLink, loss_bad=1.5)
        with pytest.raises(ValueError):
            net.add_link("a", "b", 1e6, 0.01, DropTailQueue(1000),
                         link_class=GilbertElliottLink, mean_good=0)

    def test_state_flips_over_time(self):
        net = wireless_network(mean_good=0.2, mean_bad=0.2)
        link = net.links[("a", "b")]
        states = set()
        for _ in range(50):
            net.run(until=net.sim.now + 0.2)
            states.add(link.in_bad_state)
        assert states == {True, False}
