"""Tests for trace data structures."""

import numpy as np
import pytest

from repro.netsim.trace import (
    LossPairTrace,
    PathObservation,
    ProbeRecord,
    ProbeTrace,
)


def make_trace(records, link_names=("l0", "l1"), base_delay=0.01):
    trace = ProbeTrace(list(link_names), base_delay, probe_interval=0.02,
                       probe_size=10)
    for record in records:
        trace.append(record)
    return trace


class TestProbeRecord:
    def test_lost_flag(self):
        assert ProbeRecord(0.0, (0.1, 0.2), loss_hop=1).lost
        assert not ProbeRecord(0.0, (0.1, 0.2), loss_hop=-1).lost

    def test_total_queuing(self):
        record = ProbeRecord(0.0, (0.1, 0.25), loss_hop=-1)
        assert record.total_queuing == pytest.approx(0.35)


class TestProbeTrace:
    def test_append_validates_hop_count(self):
        trace = ProbeTrace(["l0", "l1"], 0.01, 0.02, 10)
        with pytest.raises(ValueError):
            trace.append(ProbeRecord(0.0, (0.1,), loss_hop=-1))

    def test_loss_rate(self):
        records = [ProbeRecord(i * 0.02, (0, 0), -1 if i % 2 else 0)
                   for i in range(10)]
        assert make_trace(records).loss_rate == 0.5

    def test_loss_share_by_hop(self):
        records = [
            ProbeRecord(0.0, (0, 0), 0),
            ProbeRecord(0.02, (0, 0), 0),
            ProbeRecord(0.04, (0, 0), 1),
            ProbeRecord(0.06, (0, 0), -1),
        ]
        shares = make_trace(records).loss_share_by_hop()
        np.testing.assert_allclose(shares, [2 / 3, 1 / 3])

    def test_loss_share_no_losses(self):
        records = [ProbeRecord(0.0, (0, 0), -1)]
        np.testing.assert_array_equal(make_trace(records).loss_share_by_hop(),
                                      [0.0, 0.0])

    def test_observed_delays_nan_for_losses(self):
        records = [
            ProbeRecord(0.0, (0.05, 0.0), -1),
            ProbeRecord(0.02, (0.1, 0.0), 0),
        ]
        delays = make_trace(records).observed_delays
        assert delays[0] == pytest.approx(0.06)
        assert np.isnan(delays[1])

    def test_virtual_delays_exist_for_losses(self):
        records = [ProbeRecord(0.0, (0.1, 0.05), 0)]
        trace = make_trace(records)
        assert trace.virtual_queuing_delays[0] == pytest.approx(0.15)

    def test_segment_by_index(self):
        records = [ProbeRecord(i * 0.02, (0, 0), -1) for i in range(10)]
        segment = make_trace(records).segment(2, 5)
        assert len(segment) == 3
        assert segment.send_times[0] == pytest.approx(0.04)

    def test_segment_by_time(self):
        records = [ProbeRecord(i * 0.02, (0, 0), -1) for i in range(10)]
        segment = make_trace(records).segment_by_time(0.05, 0.1)
        assert len(segment) == 2  # probes at 0.06, 0.08

    def test_hop_queuing_matrix_shape(self):
        records = [ProbeRecord(i * 0.02, (0.1, 0.2), -1) for i in range(4)]
        assert make_trace(records).hop_queuing_matrix.shape == (4, 2)


class TestPathObservation:
    def test_length_mismatch_rejected(self):
        with pytest.raises(ValueError):
            PathObservation(np.array([0.0]), np.array([0.1, 0.2]))

    def test_loss_mask_and_rate(self):
        obs = PathObservation(np.arange(4.0), np.array([0.1, np.nan, 0.2, np.nan]))
        assert obs.loss_rate == 0.5
        np.testing.assert_array_equal(obs.lost, [False, True, False, True])

    def test_min_max_ignore_losses(self):
        obs = PathObservation(np.arange(3.0), np.array([0.3, np.nan, 0.1]))
        assert obs.min_delay == pytest.approx(0.1)
        assert obs.max_delay == pytest.approx(0.3)

    def test_min_delay_all_lost_raises(self):
        obs = PathObservation(np.arange(2.0), np.array([np.nan, np.nan]))
        with pytest.raises(ValueError):
            obs.min_delay

    def test_duration(self):
        obs = PathObservation(np.array([1.0, 2.0, 4.0]), np.array([0.1] * 3))
        assert obs.duration() == pytest.approx(3.0)

    def test_segment_preserves_propagation(self):
        obs = PathObservation(np.arange(5.0), np.full(5, 0.1),
                              propagation_delay=0.05)
        assert obs.segment(1, 3).propagation_delay == 0.05


class TestLossPairTrace:
    def make_pair(self, first_lost, second_lost, q=0.1):
        first = ProbeRecord(0.0, (q,), 0 if first_lost else -1)
        second = ProbeRecord(0.0, (q,), 0 if second_lost else -1)
        return first, second

    def test_loss_pair_delays_from_mixed_pairs(self):
        trace = LossPairTrace(0.01, 0.04, 10)
        trace.append(*self.make_pair(True, False, q=0.2))   # usable
        trace.append(*self.make_pair(False, False, q=0.3))  # both survive
        trace.append(*self.make_pair(True, True, q=0.4))    # both lost
        trace.append(*self.make_pair(False, True, q=0.5))   # usable
        delays = trace.loss_pair_delays()
        np.testing.assert_allclose(sorted(delays), [0.2, 0.5])

    def test_loss_rate_over_individual_probes(self):
        trace = LossPairTrace(0.01, 0.04, 10)
        trace.append(*self.make_pair(True, False))
        trace.append(*self.make_pair(False, False))
        assert trace.loss_rate == 0.25
