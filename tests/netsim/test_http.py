"""Tests for the web (HTTP) traffic model."""

import numpy as np
import pytest

from repro.netsim.http import (
    BoundedPareto,
    WebSession,
    start_web_sessions,
)
from repro.netsim.queues import DropTailQueue
from repro.netsim.topology import Network


class TestBoundedPareto:
    def test_samples_respect_bounds(self):
        dist = BoundedPareto(shape=1.2, minimum=100, maximum=10_000)
        rng = np.random.default_rng(0)
        samples = [dist.sample(rng) for _ in range(2000)]
        assert min(samples) >= 100
        assert max(samples) <= 10_000

    def test_sample_mean_matches_analytic_mean(self):
        dist = BoundedPareto(shape=1.5, minimum=100, maximum=10_000)
        rng = np.random.default_rng(1)
        samples = np.array([dist.sample(rng) for _ in range(20_000)])
        assert samples.mean() == pytest.approx(dist.mean(), rel=0.05)

    def test_heavy_tail_present(self):
        dist = BoundedPareto(shape=1.2, minimum=1000, maximum=500_000)
        rng = np.random.default_rng(2)
        samples = np.array([dist.sample(rng) for _ in range(5000)])
        # A heavy-tailed distribution has mean well above the median.
        assert samples.mean() > 1.5 * np.median(samples)

    def test_shape_one_mean(self):
        dist = BoundedPareto(shape=1.0, minimum=10, maximum=1000)
        rng = np.random.default_rng(3)
        samples = np.array([dist.sample(rng) for _ in range(20_000)])
        assert samples.mean() == pytest.approx(dist.mean(), rel=0.05)

    def test_invalid_parameters_rejected(self):
        with pytest.raises(ValueError):
            BoundedPareto(shape=0, minimum=1, maximum=2)
        with pytest.raises(ValueError):
            BoundedPareto(shape=1, minimum=5, maximum=5)


def build_web_path():
    net = Network(seed=4)
    net.add_host("server")
    net.add_host("client")
    net.add_link("server", "client", 10e6, 0.005, DropTailQueue(1_000_000))
    net.add_link("client", "server", 10e6, 0.005, DropTailQueue(1_000_000))
    net.compute_routes()
    return net


class TestWebSession:
    def test_pages_are_fetched_over_time(self):
        net = build_web_path()
        session = WebSession(net, "server", "client", session_id="s",
                             mean_think_time=0.5)
        net.run(until=60.0)
        assert session.pages_fetched >= 3
        assert session.objects_fetched >= session.pages_fetched

    def test_sessions_are_independent_streams(self):
        net = build_web_path()
        a = WebSession(net, "server", "client", session_id="a",
                       mean_think_time=0.5)
        b = WebSession(net, "server", "client", session_id="b",
                       mean_think_time=0.5)
        net.run(until=30.0)
        # Both make progress; counts differ (independent randomness).
        assert a.pages_fetched > 0 and b.pages_fetched > 0

    def test_start_web_sessions_helper(self):
        net = build_web_path()
        sessions = start_web_sessions(net, "server", "client", count=3,
                                      mean_think_time=0.5)
        assert len(sessions) == 3
        net.run(until=30.0)
        assert all(s.objects_fetched > 0 for s in sessions)

    def test_requires_host_endpoints(self):
        net = build_web_path()
        net.add_router("r")
        with pytest.raises(TypeError):
            WebSession(net, "r", "client", session_id="s")

    def test_deterministic_given_seed(self):
        counts = []
        for _ in range(2):
            net = build_web_path()
            session = WebSession(net, "server", "client", session_id="s",
                                 mean_think_time=0.5)
            net.run(until=20.0)
            counts.append((session.pages_fetched, session.objects_fetched))
        assert counts[0] == counts[1]
