"""Tests for topology construction and routing."""

import pytest

from repro.netsim.node import Host, Router
from repro.netsim.packet import Packet
from repro.netsim.queues import DropTailQueue
from repro.netsim.topology import Network, chain_network


class TestNetwork:
    def test_duplicate_node_rejected(self):
        net = Network()
        net.add_host("a")
        with pytest.raises(ValueError):
            net.add_router("a")

    def test_link_requires_existing_endpoints(self):
        net = Network()
        net.add_host("a")
        with pytest.raises(KeyError):
            net.add_link("a", "missing", 1e6, 0.01, DropTailQueue(1000))

    def test_duplicate_link_rejected(self):
        net = Network()
        net.add_host("a")
        net.add_host("b")
        net.add_link("a", "b", 1e6, 0.01, DropTailQueue(1000))
        with pytest.raises(ValueError):
            net.add_link("a", "b", 1e6, 0.01, DropTailQueue(1000))

    def test_duplex_link_creates_both_directions(self):
        net = Network()
        net.add_host("a")
        net.add_host("b")
        forward, backward = net.add_duplex_link(
            "a", "b", 1e6, 0.01, lambda: DropTailQueue(1000)
        )
        assert ("a", "b") in net.links and ("b", "a") in net.links
        assert forward.queue is not backward.queue

    def test_routes_follow_shortest_path(self):
        net = Network()
        for name in "abcd":
            net.add_router(name)
        # a-b-d (2 hops) and a-c-d (2 hops) plus direct a-d (1 hop).
        for src, dst in [("a", "b"), ("b", "d"), ("a", "c"), ("c", "d"), ("a", "d")]:
            net.add_link(src, dst, 1e6, 0.01, DropTailQueue(1000))
        net.compute_routes()
        path = net.path_links("a", "d")
        assert [link.name for link in path] == ["a->d"]

    def test_path_links_order(self):
        net = Network()
        for name in ["a", "m", "b"]:
            net.add_host(name) if name != "m" else net.add_router(name)
        net.add_link("a", "m", 1e6, 0.01, DropTailQueue(1000))
        net.add_link("m", "b", 1e6, 0.01, DropTailQueue(1000))
        net.compute_routes()
        assert [l.name for l in net.path_links("a", "b")] == ["a->m", "m->b"]

    def test_no_route_raises(self):
        net = Network()
        net.add_host("a")
        net.add_host("b")
        net.compute_routes()
        with pytest.raises(ValueError):
            net.path_links("a", "b")

    def test_unknown_endpoint_raises(self):
        net = Network()
        net.add_host("a")
        with pytest.raises(KeyError):
            net.path_links("a", "nope")

    def test_propagation_delay_sums_hops(self):
        net = Network()
        net.add_host("a")
        net.add_router("m")
        net.add_host("b")
        net.add_link("a", "m", 1e6, 0.003, DropTailQueue(1000))
        net.add_link("m", "b", 1e6, 0.007, DropTailQueue(1000))
        net.compute_routes()
        assert net.propagation_delay("a", "b") == pytest.approx(0.010)


class TestChainNetwork:
    def test_router_and_stub_inventory(self):
        net = chain_network([1e6, 1e6], [10_000, 10_000], stub_hosts_per_router=2)
        routers = [n for n in net.nodes.values() if isinstance(n, Router)]
        hosts = [n for n in net.nodes.values() if isinstance(n, Host)]
        assert len(routers) == 3
        # 2 src + 2 snk stubs per router.
        assert len(hosts) == 3 * 4

    def test_chain_link_parameters(self):
        net = chain_network([1e6, 2e6], [10_000, 20_000])
        link = net.links[("r1", "r2")]
        assert link.bandwidth_bps == 2e6
        assert link.queue.capacity_bytes == 20_000

    def test_mismatched_buffer_list_rejected(self):
        with pytest.raises(ValueError):
            chain_network([1e6], [10_000, 20_000])

    def test_end_to_end_route_exists(self):
        net = chain_network([1e6, 1e6, 1e6], [10_000] * 3)
        path = net.path_links("src0_0", "snk3_0")
        names = [link.name for link in path]
        assert names[0] == "src0_0->r0"
        assert names[-1] == "r3->snk3_0"
        assert "r0->r1" in names and "r2->r3" in names

    def test_reverse_route_for_acks(self):
        net = chain_network([1e6, 1e6], [10_000] * 2)
        path = net.path_links("snk2_0", "src0_0")
        assert [l.name for l in path][1:3] == ["r2->r1", "r1->r0"]

    def test_custom_queue_factory_applied_to_chain_only(self):
        calls = []

        def factory(capacity, index):
            calls.append(index)
            return DropTailQueue(capacity)

        chain_network([1e6, 1e6], [10_000] * 2, queue_factory=factory)
        assert calls == [0, 1]

    def test_deterministic_construction(self):
        a = chain_network([1e6], [10_000], seed=3)
        b = chain_network([1e6], [10_000], seed=3)
        assert (
            a.links[("src0_0", "r0")].prop_delay
            == b.links[("src0_0", "r0")].prop_delay
        )

    def test_packet_travels_end_to_end(self):
        net = chain_network([1e6, 1e6], [10_000] * 2)
        dst = net.nodes["snk2_0"]
        got = []

        class Sink:
            def handle_packet(self, packet):
                got.append(packet)

        port = dst.bind(Sink())
        src = net.nodes["src0_0"]
        src.send(Packet(src="src0_0", dst="snk2_0", dst_port=port, size=100))
        net.run(until=1.0)
        assert len(got) == 1
