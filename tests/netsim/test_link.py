"""Tests for store-and-forward links."""

import pytest

from repro.netsim.engine import Simulator
from repro.netsim.link import Link
from repro.netsim.packet import Packet
from repro.netsim.queues import DropTailQueue


class Collector:
    """Minimal downstream node: records (time, packet)."""

    def __init__(self, sim):
        self.sim = sim
        self.received = []

    def receive(self, packet):
        self.received.append((self.sim.now, packet))


@pytest.fixture
def wire():
    sim = Simulator(0)
    sink = Collector(sim)
    link = Link(
        sim,
        name="a->b",
        src_name="a",
        dst=sink,
        bandwidth_bps=1e6,
        prop_delay=0.01,
        queue=DropTailQueue(10_000),
    )
    return sim, link, sink


def make_packet(size=1000, seq=0):
    return Packet(src="a", dst="b", size=size, seq=seq)


class TestTransmission:
    def test_delivery_time_is_tx_plus_prop(self, wire):
        sim, link, sink = wire
        link.send(make_packet(size=1000))
        sim.run()
        # 1000 B * 8 / 1 Mb/s = 8 ms tx; + 10 ms prop.
        assert sink.received[0][0] == pytest.approx(0.018)

    def test_back_to_back_packets_serialize(self, wire):
        sim, link, sink = wire
        link.send(make_packet(seq=0))
        link.send(make_packet(seq=1))
        sim.run()
        t0, t1 = sink.received[0][0], sink.received[1][0]
        assert t1 - t0 == pytest.approx(0.008)  # one transmission time apart

    def test_fifo_delivery_order(self, wire):
        sim, link, sink = wire
        for i in range(4):
            link.send(make_packet(seq=i))
        sim.run()
        assert [p.seq for _, p in sink.received] == [0, 1, 2, 3]

    def test_drop_returns_false(self, wire):
        sim, link, sink = wire
        results = [link.send(make_packet(seq=i)) for i in range(15)]
        # capacity 10 packets + 1 in service = 11 admitted.
        assert results.count(False) == 4
        sim.run()
        assert len(sink.received) == 11

    def test_drop_listener_invoked(self, wire):
        sim, link, sink = wire
        dropped = []
        link.drop_listeners.append(dropped.append)
        for i in range(15):
            link.send(make_packet(seq=i))
        assert len(dropped) == 4

    def test_statistics(self, wire):
        sim, link, sink = wire
        for i in range(3):
            link.send(make_packet(seq=i))
        sim.run()
        assert link.packets_sent == 3
        assert link.bytes_sent == 3000

    def test_utilization_reflects_busy_time(self, wire):
        sim, link, sink = wire
        link.send(make_packet(size=1000))
        sim.run(until=1.0)
        assert link.utilization() == pytest.approx(0.008, rel=0.01)

    def test_idle_link_has_zero_residual(self, wire):
        _, link, _ = wire
        assert link.service_residual() == 0.0

    def test_residual_during_service(self, wire):
        sim, link, sink = wire
        link.send(make_packet(size=1000))
        sim.run(until=0.002)
        assert link.service_residual() == pytest.approx(0.006)


class TestProbeTransit:
    def test_empty_link_probe_latency(self, wire):
        sim, link, sink = wire
        hop = link.probe_transit(10, sim.rng("p"))
        assert not hop.lost
        assert hop.queuing_delay == 0.0
        assert hop.latency == pytest.approx(0.01 + 10 * 8 / 1e6)

    def test_probe_sees_backlog_delay(self, wire):
        sim, link, sink = wire
        link.send(make_packet(size=1000))  # in service
        link.send(make_packet(size=1000))  # queued
        hop = link.probe_transit(10, sim.rng("p"))
        # residual (full tx, just started) + one queued packet.
        assert hop.queuing_delay == pytest.approx(0.016)

    def test_probe_lost_on_full_queue(self, wire):
        sim, link, sink = wire
        for i in range(11):
            link.send(make_packet(seq=i))
        hop = link.probe_transit(10, sim.rng("p"))
        assert hop.lost

    def test_probe_does_not_disturb_traffic(self, wire):
        sim, link, sink = wire
        link.send(make_packet(seq=0))
        for _ in range(100):
            link.probe_transit(10, sim.rng("p"))
        sim.run()
        assert len(sink.received) == 1


class TestValidation:
    def test_bad_bandwidth_rejected(self):
        sim = Simulator(0)
        with pytest.raises(ValueError):
            Link(sim, "l", "a", Collector(sim), bandwidth_bps=0,
                 prop_delay=0.01, queue=DropTailQueue(1000))

    def test_negative_prop_delay_rejected(self):
        sim = Simulator(0)
        with pytest.raises(ValueError):
            Link(sim, "l", "a", Collector(sim), bandwidth_bps=1e6,
                 prop_delay=-1, queue=DropTailQueue(1000))
