"""Tests for round-trip (RTT) probing."""

import numpy as np
import pytest

from repro.netsim.probes import PeriodicProber
from repro.netsim.queues import DropTailQueue
from repro.netsim.topology import Network, chain_network
from repro.netsim.traffic import UdpOnOffSource, UdpSink


def onoff_load(net, src, dst, rate_bps, flow="load"):
    sink = UdpSink(net.nodes[dst])
    UdpOnOffSource(net.nodes[src], dst, sink.port, flow,
                   rate_bps=rate_bps, packet_size=1000,
                   mean_on=0.5, mean_off=0.5)


class TestRoundTripProber:
    def test_path_covers_both_directions(self, small_chain):
        prober = PeriodicProber(small_chain, "src0_0", "snk3_0",
                                round_trip=True, stop=1.0)
        names = prober.trace.link_names
        assert "r2->r3" in names and "r3->r2" in names
        assert names[0] == "src0_0->r0"
        assert names[-1] == "r0->src0_0"

    def test_idle_rtt_is_twice_one_way(self, small_chain):
        one_way = PeriodicProber(small_chain, "src0_0", "snk3_0", stop=0.5)
        rtt = PeriodicProber(small_chain, "src0_0", "snk3_0",
                             round_trip=True, stop=0.5)
        small_chain.run(until=2.0)
        # The chain is symmetric, so base RTT = 2x base one-way delay.
        assert rtt.trace.base_delay == pytest.approx(
            2 * one_way.trace.base_delay, rel=1e-9
        )

    def test_forward_congestion_visible_in_rtt(self):
        net = chain_network([10e6, 10e6, 1e6], [80_000, 80_000, 20_000],
                            seed=5)
        onoff_load(net, "src0_1", "snk3_1", rate_bps=2.5e6)
        prober = PeriodicProber(net, "src0_0", "snk3_0", round_trip=True,
                                start=5.0, stop=40.0)
        net.run(until=45.0)
        trace = prober.trace
        assert trace.loss_rate > 0.1
        shares = trace.loss_share_by_hop()
        assert shares[trace.link_names.index("r2->r3")] > 0.99

    def test_reverse_congestion_also_visible(self):
        # An RTT probe cannot tell forward from reverse congestion —
        # the loss hop lands on the reverse link.
        net = chain_network([10e6, 10e6, 10e6], [80_000] * 3, seed=6)
        # Congest r3->r2 (reverse direction): slow it down and give it a
        # small buffer (the builder's reverse links are ample by default).
        reverse_link = net.links[("r3", "r2")]
        reverse_link.bandwidth_bps = 1e6
        reverse_link.queue = DropTailQueue(20_000)
        reverse_link.queue.attach(net.sim, 1e6)
        onoff_load(net, "src3_1", "snk0_1", rate_bps=2.5e6)
        prober = PeriodicProber(net, "src0_0", "snk3_0", round_trip=True,
                                start=5.0, stop=40.0)
        net.run(until=45.0)
        trace = prober.trace
        assert trace.loss_rate > 0.1
        shares = trace.loss_share_by_hop()
        assert shares[trace.link_names.index("r3->r2")] > 0.99

    def test_identification_works_on_rtt_observation(self):
        from repro.core import IdentifyConfig, identify
        from repro.models.base import EMConfig

        net = chain_network([10e6, 10e6, 1e6], [80_000, 80_000, 20_000],
                            seed=7)
        onoff_load(net, "src0_1", "snk3_1", rate_bps=2.5e6)
        prober = PeriodicProber(net, "src0_0", "snk3_0", round_trip=True,
                                start=5.0, stop=100.0)
        net.run(until=105.0)
        report = identify(prober.trace,
                          IdentifyConfig(em=EMConfig(max_iter=40, tol=1e-3)))
        assert report.dominant_link_exists
