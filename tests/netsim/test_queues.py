"""Tests for droptail and (Adaptive) RED queues."""

import numpy as np
import pytest

from repro.netsim.engine import Simulator
from repro.netsim.packet import Packet
from repro.netsim.queues import AdaptiveREDQueue, DropTailQueue, REDQueue


def make_packet(size=1000, seq=0):
    return Packet(src="a", dst="b", size=size, seq=seq)


@pytest.fixture
def rng():
    return np.random.default_rng(0)


def attached(queue, rate=1e6, sim=None):
    queue.attach(sim or Simulator(0), rate)
    return queue


class TestDropTail:
    def test_fifo_order(self, rng):
        queue = attached(DropTailQueue(10_000))
        packets = [make_packet(seq=i) for i in range(5)]
        for packet in packets:
            assert queue.offer(packet, 0.0, rng)
        assert [queue.pop().seq for _ in range(5)] == [0, 1, 2, 3, 4]

    def test_pop_empty_returns_none(self):
        queue = attached(DropTailQueue(10_000))
        assert queue.pop() is None

    def test_capacity_in_packets_from_bytes(self):
        queue = DropTailQueue(20_000, nominal_packet_size=1000)
        assert queue.capacity_packets == 20

    def test_drop_when_packet_count_full(self, rng):
        queue = attached(DropTailQueue(3_000))
        for i in range(3):
            assert queue.offer(make_packet(seq=i), 0.0, rng)
        assert not queue.offer(make_packet(seq=3), 0.0, rng)
        assert queue.drops == 1
        assert queue.arrivals == 4

    def test_small_packets_also_count_against_packet_limit(self, rng):
        # ns-2 semantics: a 40-byte ACK occupies a whole buffer slot.
        queue = attached(DropTailQueue(2_000))
        assert queue.offer(make_packet(size=40), 0.0, rng)
        assert queue.offer(make_packet(size=40), 0.0, rng)
        assert not queue.offer(make_packet(size=40), 0.0, rng)

    def test_backlog_bytes_tracks_contents(self, rng):
        queue = attached(DropTailQueue(10_000))
        queue.offer(make_packet(size=400), 0.0, rng)
        queue.offer(make_packet(size=600), 0.0, rng)
        assert queue.backlog_bytes == 1000
        queue.pop()
        assert queue.backlog_bytes == 600

    def test_loss_ratio(self, rng):
        queue = attached(DropTailQueue(1_000))
        queue.offer(make_packet(), 0.0, rng)
        queue.offer(make_packet(), 0.0, rng)
        assert queue.loss_ratio == 0.5

    def test_max_queuing_delay_matches_paper_definition(self):
        queue = attached(DropTailQueue(20_000), rate=1e6)
        # 20 packets x 1000 B x 8 / 1 Mb/s = 0.16 s
        assert queue.max_queuing_delay() == pytest.approx(0.16)

    def test_probe_loss_only_when_full(self, rng):
        queue = attached(DropTailQueue(2_000))
        assert not queue.probe_loss(10, 0.0, rng)
        queue.offer(make_packet(), 0.0, rng)
        assert not queue.probe_loss(10, 0.0, rng)
        queue.offer(make_packet(), 0.0, rng)
        assert queue.probe_loss(10, 0.0, rng)

    def test_probe_observe_reports_backlog_drain_time(self, rng):
        queue = attached(DropTailQueue(10_000), rate=1e6)
        queue.offer(make_packet(size=1000), 0.0, rng)
        lost, delay = queue.probe_observe(10, 0.0, rng, residual=0.002)
        assert not lost
        assert delay == pytest.approx(0.002 + 1000 * 8 / 1e6)

    def test_probe_observe_does_not_mutate_state(self, rng):
        queue = attached(DropTailQueue(10_000))
        queue.offer(make_packet(), 0.0, rng)
        before = (queue.backlog_bytes, queue.backlog_packets, queue.arrivals)
        queue.probe_observe(10, 0.0, rng, residual=0.0)
        assert (queue.backlog_bytes, queue.backlog_packets, queue.arrivals) == before

    def test_invalid_capacity_rejected(self):
        with pytest.raises(ValueError):
            DropTailQueue(0)
        with pytest.raises(ValueError):
            DropTailQueue(1000, nominal_packet_size=0)


class TestRED:
    def test_no_drops_below_min_threshold(self, rng):
        queue = attached(REDQueue(100_000, min_th=10, max_th=30))
        for i in range(5):
            assert queue.offer(make_packet(seq=i), i * 0.001, rng)
        assert queue.drops == 0

    def test_average_tracks_queue(self, rng):
        queue = attached(REDQueue(100_000, min_th=5, weight=0.5))
        for i in range(10):
            queue.offer(make_packet(seq=i), 0.0, rng)
        assert queue.avg > 0

    def test_forced_drop_on_physical_overflow(self, rng):
        queue = attached(REDQueue(3_000, min_th=100, max_th=200))
        for i in range(3):
            queue.offer(make_packet(seq=i), 0.0, rng)
        assert not queue.offer(make_packet(seq=3), 0.0, rng)
        assert queue.forced_drops == 1

    def test_early_drops_occur_in_drop_region(self, rng):
        queue = attached(REDQueue(1_000_000, min_th=2, max_th=6, max_p=0.5,
                                  weight=0.5))
        dropped = 0
        for i in range(200):
            if not queue.offer(make_packet(seq=i), 0.0, rng):
                dropped += 1
            if queue.backlog_packets > 4:
                queue.pop()
        assert dropped > 0
        assert queue.early_drops == dropped

    def test_gentle_region_drop_probability(self):
        queue = attached(REDQueue(1_000_000, min_th=10, max_th=30, max_p=0.1))
        queue.avg = 45.0  # between max_th and 2*max_th
        p = queue._drop_probability()
        assert 0.1 < p < 1.0
        queue.avg = 60.0
        assert queue._drop_probability() == 1.0

    def test_drop_probability_linear_between_thresholds(self):
        queue = attached(REDQueue(1_000_000, min_th=10, max_th=30, max_p=0.1))
        queue.avg = 20.0  # midway
        assert queue._drop_probability() == pytest.approx(0.05)

    def test_idle_decay_reduces_average(self, rng):
        queue = attached(REDQueue(100_000, min_th=5, weight=0.25))
        for i in range(8):
            queue.offer(make_packet(seq=i), 0.0, rng)
        for _ in range(8):
            queue.pop()
        avg_before = queue.avg
        queue.notify_idle(0.0)
        queue.offer(make_packet(seq=99), 10.0, rng)  # long idle gap
        assert queue.avg < avg_before

    def test_probe_loss_respects_drop_curve(self, rng):
        queue = attached(REDQueue(1_000_000, min_th=5, max_th=15, max_p=1.0))
        queue.avg = 0.0
        assert not queue.probe_loss(10, 0.0, rng)
        queue.avg = 14.9  # p_b ~ 0.99
        losses = sum(queue.probe_loss(10, 0.0, rng) for _ in range(100))
        assert losses > 80

    def test_invalid_thresholds_rejected(self):
        with pytest.raises(ValueError):
            REDQueue(10_000, min_th=0)
        with pytest.raises(ValueError):
            REDQueue(10_000, min_th=10, max_th=5)


class TestAdaptiveRED:
    def test_max_p_increases_under_sustained_load(self, rng):
        sim = Simulator(0)
        queue = AdaptiveREDQueue(1_000_000, min_th=5, max_th=15, max_p=0.05,
                                 interval=0.1)
        queue.attach(sim, 1e6)
        queue.avg = 14.0  # above target band
        initial = queue.max_p
        sim.run(until=1.0)
        assert queue.max_p > initial

    def test_max_p_decreases_when_underloaded(self, rng):
        sim = Simulator(0)
        queue = AdaptiveREDQueue(1_000_000, min_th=5, max_th=15, max_p=0.2,
                                 interval=0.1)
        queue.attach(sim, 1e6)
        queue.avg = 5.5  # below target band
        sim.run(until=1.0)
        assert queue.max_p < 0.2

    def test_max_p_bounded(self):
        sim = Simulator(0)
        queue = AdaptiveREDQueue(1_000_000, min_th=5, max_th=15, max_p=0.49,
                                 interval=0.05)
        queue.attach(sim, 1e6)
        queue.avg = 14.9
        sim.run(until=5.0)
        assert queue.max_p <= 0.5
