"""Tests for hosts and routers."""

import pytest

from repro.netsim.engine import Simulator
from repro.netsim.node import Host, Router
from repro.netsim.packet import Packet
from repro.netsim.queues import DropTailQueue
from repro.netsim.topology import Network


class RecordingAgent:
    def __init__(self):
        self.packets = []

    def handle_packet(self, packet):
        self.packets.append(packet)


class TestHost:
    def test_bind_assigns_sequential_ports(self, sim):
        host = Host(sim, "h")
        assert host.bind(RecordingAgent()) == 1
        assert host.bind(RecordingAgent()) == 2

    def test_bind_explicit_port(self, sim):
        host = Host(sim, "h")
        assert host.bind(RecordingAgent(), port=9) == 9
        # Auto ports continue above the explicit one.
        assert host.bind(RecordingAgent()) == 10

    def test_bind_duplicate_port_rejected(self, sim):
        host = Host(sim, "h")
        host.bind(RecordingAgent(), port=3)
        with pytest.raises(ValueError):
            host.bind(RecordingAgent(), port=3)

    def test_delivery_demuxes_by_port(self, sim):
        host = Host(sim, "h")
        agent_a, agent_b = RecordingAgent(), RecordingAgent()
        port_a = host.bind(agent_a)
        port_b = host.bind(agent_b)
        host.receive(Packet(src="x", dst="h", dst_port=port_b, size=10))
        assert not agent_a.packets
        assert len(agent_b.packets) == 1

    def test_delivery_to_unbound_port_is_dropped(self, sim):
        host = Host(sim, "h")
        host.receive(Packet(src="x", dst="h", dst_port=99, size=10))
        assert host.packets_delivered == 1  # counted, silently discarded


class TestRouting:
    def test_forwarding_uses_route_table(self, two_host_network):
        net = two_host_network
        agent = RecordingAgent()
        port = net.nodes["b"].bind(agent)
        net.nodes["a"].send(Packet(src="a", dst="b", dst_port=port, size=100))
        net.run(until=1.0)
        assert len(agent.packets) == 1

    def test_missing_route_counts_failure(self, sim):
        router = Router(sim, "r")
        router.receive(Packet(src="x", dst="elsewhere", size=10))
        assert router.routing_failures == 1

    def test_send_to_self_delivers_locally(self, sim):
        host = Host(sim, "h")
        agent = RecordingAgent()
        port = host.bind(agent)
        host.send(Packet(src="h", dst="h", dst_port=port, size=10))
        assert len(agent.packets) == 1

    def test_send_without_route_fails(self, sim):
        host = Host(sim, "h")
        assert not host.send(Packet(src="h", dst="b", size=10))
        assert host.routing_failures == 1

    def test_forward_counter(self, two_host_network):
        net = two_host_network
        net.add_router("m")  # not on any path; counters on a only
        agent = RecordingAgent()
        port = net.nodes["b"].bind(agent)
        net.nodes["a"].send(Packet(src="a", dst="b", dst_port=port, size=100))
        net.run(until=1.0)
        assert net.nodes["b"].packets_delivered == 1
