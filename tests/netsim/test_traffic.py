"""Tests for UDP traffic sources."""

import pytest

from repro.netsim.queues import DropTailQueue
from repro.netsim.topology import Network
from repro.netsim.traffic import (
    CbrSource,
    PeriodicBurstSource,
    SaturatingBurstSource,
    UdpOnOffSource,
    UdpSink,
    start_ftp_flows,
)


@pytest.fixture
def pipe():
    net = Network(seed=1)
    net.add_host("a")
    net.add_host("b")
    net.add_link("a", "b", 10e6, 0.001, DropTailQueue(1_000_000))
    net.add_link("b", "a", 10e6, 0.001, DropTailQueue(1_000_000))
    net.compute_routes()
    sink = UdpSink(net.nodes["b"])
    return net, sink


class TestCbr:
    def test_rate_is_respected(self, pipe):
        net, sink = pipe
        CbrSource(net.nodes["a"], "b", sink.port, "cbr", rate_bps=80_000,
                  packet_size=1000)
        net.run(until=10.0)
        # 80 kb/s = 10 pkt/s for 10 s = ~100 packets.
        assert 95 <= sink.packets_received <= 105

    def test_stop_time_honoured(self, pipe):
        net, sink = pipe
        CbrSource(net.nodes["a"], "b", sink.port, "cbr", rate_bps=80_000,
                  packet_size=1000, stop=1.0)
        net.run(until=10.0)
        assert sink.packets_received <= 11

    def test_invalid_rate_rejected(self, pipe):
        net, sink = pipe
        with pytest.raises(ValueError):
            CbrSource(net.nodes["a"], "b", sink.port, "cbr", rate_bps=0)


class TestOnOff:
    def test_average_rate_near_half_peak(self, pipe):
        net, sink = pipe
        UdpOnOffSource(net.nodes["a"], "b", sink.port, "oo",
                       rate_bps=400_000, packet_size=1000,
                       mean_on=0.5, mean_off=0.5)
        net.run(until=60.0)
        avg_bps = sink.bytes_received * 8 / 60.0
        assert 0.3 * 400_000 < avg_bps < 0.7 * 400_000

    def test_deterministic_given_seed(self):
        counts = []
        for _ in range(2):
            net = Network(seed=5)
            net.add_host("a")
            net.add_host("b")
            net.add_link("a", "b", 10e6, 0.001, DropTailQueue(1_000_000))
            net.compute_routes()
            sink = UdpSink(net.nodes["b"])
            UdpOnOffSource(net.nodes["a"], "b", sink.port, "oo",
                           rate_bps=100_000)
            net.run(until=20.0)
            counts.append(sink.packets_received)
        assert counts[0] == counts[1]

    def test_invalid_rate_rejected(self, pipe):
        net, sink = pipe
        with pytest.raises(ValueError):
            UdpOnOffSource(net.nodes["a"], "b", sink.port, "oo", rate_bps=-1)


class TestPeriodicBurst:
    def test_burst_count_matches_geometry(self, pipe):
        net, sink = pipe
        PeriodicBurstSource(net.nodes["a"], "b", sink.port, "pb",
                            rate_bps=800_000, burst_duration=0.5,
                            period=2.0, packet_size=1000)
        net.run(until=10.0)
        # 5 bursts x 0.5 s x 100 pkt/s = ~250 packets.
        assert 230 <= sink.packets_received <= 260

    def test_silent_between_bursts(self, pipe):
        net, sink = pipe
        PeriodicBurstSource(net.nodes["a"], "b", sink.port, "pb",
                            rate_bps=800_000, burst_duration=0.2,
                            period=5.0, packet_size=1000)
        net.run(until=0.5)
        during = sink.packets_received
        net.run(until=4.5)
        assert sink.packets_received == during  # nothing between bursts

    def test_invalid_geometry_rejected(self, pipe):
        net, sink = pipe
        with pytest.raises(ValueError):
            PeriodicBurstSource(net.nodes["a"], "b", sink.port, "pb",
                                rate_bps=1e5, burst_duration=3.0, period=2.0)


class TestSaturatingBurst:
    def test_two_phase_rates(self, pipe):
        net, sink = pipe
        SaturatingBurstSource(net.nodes["a"], "b", sink.port, "sat",
                              fill_rate_bps=800_000, fill_duration=1.0,
                              hold_rate_bps=80_000, hold_duration=2.0,
                              period=10.0, packet_size=1000)
        net.run(until=1.0)
        fill_packets = sink.packets_received
        net.run(until=3.0)
        hold_packets = sink.packets_received - fill_packets
        assert fill_packets == pytest.approx(100, abs=5)
        assert hold_packets == pytest.approx(20, abs=4)

    def test_no_double_emission_chains(self, pipe):
        # Regression: stale fill chains must not survive into the hold
        # phase (would double the hold rate).
        net, sink = pipe
        SaturatingBurstSource(net.nodes["a"], "b", sink.port, "sat",
                              fill_rate_bps=400_000, fill_duration=0.5,
                              hold_rate_bps=100_000, hold_duration=4.0,
                              period=10.0, packet_size=1000)
        net.run(until=4.5)
        total = sink.packets_received
        # 0.5 s x 50 pkt/s + 4 s x 12.5 pkt/s = 75.
        assert total == pytest.approx(75, abs=6)

    def test_repeats_each_period(self, pipe):
        net, sink = pipe
        SaturatingBurstSource(net.nodes["a"], "b", sink.port, "sat",
                              fill_rate_bps=800_000, fill_duration=0.2,
                              hold_rate_bps=80_000, hold_duration=0.5,
                              period=2.0, packet_size=1000)
        net.run(until=1.9)  # strictly inside period 1, after its burst
        first_cycle = sink.packets_received
        net.run(until=3.9)
        second_cycle = sink.packets_received - first_cycle
        assert second_cycle == pytest.approx(first_cycle, abs=4)

    def test_invalid_period_rejected(self, pipe):
        net, sink = pipe
        with pytest.raises(ValueError):
            SaturatingBurstSource(net.nodes["a"], "b", sink.port, "sat",
                                  fill_rate_bps=1e5, fill_duration=1.0,
                                  hold_rate_bps=1e5, hold_duration=1.0,
                                  period=1.5)


class TestFtpHelper:
    def test_start_ftp_flows_creates_senders(self, small_chain):
        senders = start_ftp_flows(small_chain, "src0_0", "snk3_0", count=3)
        assert len(senders) == 3
        small_chain.run(until=5.0)
        assert all(s.segments_sent > 0 for s in senders)

    def test_ftp_requires_hosts(self, small_chain):
        with pytest.raises(TypeError):
            start_ftp_flows(small_chain, "r0", "r3", count=1)
