"""Tests for the command-line interface."""

import numpy as np
import pytest

from repro.cli import build_parser, main
from repro.measurement.traceio import load_observation, save_observation
from repro.netsim.trace import PathObservation


def strong_csv(tmp_path, n=2000, q_k=0.1, seed=0):
    rng = np.random.default_rng(seed)
    send = np.arange(n) * 0.02
    delays = np.empty(n)
    queue = 0.0
    for i in range(n):
        queue = min(q_k, max(0.0, queue + rng.uniform(-0.012, 0.015)))
        if queue >= q_k - 1e-12 and rng.random() < 0.7:
            delays[i] = np.nan
        else:
            delays[i] = 0.02 + queue
    path = tmp_path / "obs.csv"
    save_observation(PathObservation(send, delays), path)
    return path


class TestParser:
    def test_requires_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_all_commands_parse(self):
        parser = build_parser()
        parser.parse_args(["simulate", "--out", "x.csv"])
        parser.parse_args(["identify", "obs.csv"])
        parser.parse_args(["bound", "obs.csv", "--verdict", "strong"])
        parser.parse_args(["clock", "obs.csv", "--out", "y.csv"])
        parser.parse_args(["pinpoint", "trace.npz"])

    def test_unknown_scenario_exits(self, tmp_path):
        with pytest.raises(SystemExit):
            main(["simulate", "--scenario", "bogus",
                  "--out", str(tmp_path / "x.csv")])


class TestCommands:
    def test_identify_command(self, tmp_path, capsys):
        csv_path = strong_csv(tmp_path)
        code = main(["identify", str(csv_path), "--hidden", "1"])
        out = capsys.readouterr().out
        assert code == 0
        assert "verdict: strong" in out

    def test_bound_command_with_explicit_verdict(self, tmp_path, capsys):
        csv_path = strong_csv(tmp_path)
        code = main(["bound", str(csv_path), "--verdict", "strong",
                     "--hidden", "1", "--bound-symbols", "20"])
        out = capsys.readouterr().out
        assert code == 0
        assert "max queuing delay bound" in out

    def test_clock_command_roundtrip(self, tmp_path, capsys):
        rng = np.random.default_rng(1)
        n = 1500
        send = np.arange(n) * 0.02
        delay = 0.05 + rng.exponential(0.01, n)
        delay[rng.random(n) < 0.1] = 0.05 + 1e-5
        measured = delay + 4e-5 * send
        in_path = tmp_path / "in.csv"
        out_path = tmp_path / "out.csv"
        save_observation(PathObservation(send, measured), in_path)
        code = main(["clock", str(in_path), "--out", str(out_path)])
        out = capsys.readouterr().out
        assert code == 0
        assert "estimated skew" in out
        repaired = load_observation(out_path)
        # The upward drift is gone: late delays no longer exceed early
        # ones systematically.
        early = np.nanmean(repaired.delays[:300])
        late = np.nanmean(repaired.delays[-300:])
        assert abs(late - early) < 0.005

    @pytest.mark.slow
    def test_simulate_then_identify_then_pinpoint(self, tmp_path, capsys):
        obs_path = tmp_path / "sim.csv"
        trace_path = tmp_path / "sim.npz"
        code = main([
            "simulate", "--scenario", "strong", "--duration", "60",
            "--warmup", "15", "--out", str(obs_path),
            "--trace-out", str(trace_path),
        ])
        assert code == 0
        code = main(["identify", str(obs_path)])
        out = capsys.readouterr().out
        assert code == 0
        assert "verdict: strong" in out
        code = main(["pinpoint", str(trace_path)])
        out = capsys.readouterr().out
        assert code == 0
        assert "r2->r3" in out
