"""Tests for the command-line interface."""

import json

import numpy as np
import pytest

from repro import obs
from repro.cli import build_parser, main
from repro.measurement.traceio import load_observation, save_observation
from repro.netsim.trace import PathObservation
from repro.obs.schema import validate_event


def strong_csv(tmp_path, n=2000, q_k=0.1, seed=0):
    rng = np.random.default_rng(seed)
    send = np.arange(n) * 0.02
    delays = np.empty(n)
    queue = 0.0
    for i in range(n):
        queue = min(q_k, max(0.0, queue + rng.uniform(-0.012, 0.015)))
        if queue >= q_k - 1e-12 and rng.random() < 0.7:
            delays[i] = np.nan
        else:
            delays[i] = 0.02 + queue
    path = tmp_path / "obs.csv"
    save_observation(PathObservation(send, delays), path)
    return path


class TestParser:
    def test_requires_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_all_commands_parse(self):
        parser = build_parser()
        parser.parse_args(["simulate", "--out", "x.csv"])
        parser.parse_args(["identify", "obs.csv"])
        parser.parse_args(["bound", "obs.csv", "--verdict", "strong"])
        parser.parse_args(["clock", "obs.csv", "--out", "y.csv"])
        parser.parse_args(["pinpoint", "trace.npz"])
        parser.parse_args(["monitor", "obs.csv"])
        parser.parse_args(["stats", "events.jsonl", "--top", "3", "--json"])

    def test_bare_demo_defaults_to_8000_probes(self):
        parser = build_parser()
        assert parser.parse_args(["monitor", "--demo"]).demo == 8000
        assert parser.parse_args(["monitor", "--demo", "500"]).demo == 500
        assert parser.parse_args(["monitor", "x.csv"]).demo is None

    def test_telemetry_and_metrics_flags_parse(self):
        parser = build_parser()
        args = parser.parse_args([
            "monitor", "--demo", "--telemetry", "t.jsonl",
            "--metrics-file", "m.prom", "--metrics-port", "0",
        ])
        assert args.telemetry == "t.jsonl"
        assert args.metrics_file == "m.prom"
        assert args.metrics_port == 0
        assert parser.parse_args(["identify", "x.csv"]).telemetry is None
        assert parser.parse_args(
            ["--log-level", "info", "identify", "x.csv"]).log_level == "info"

    def test_unknown_scenario_exits(self, tmp_path):
        with pytest.raises(SystemExit):
            main(["simulate", "--scenario", "bogus",
                  "--out", str(tmp_path / "x.csv")])


class TestCommands:
    def test_identify_command(self, tmp_path, capsys):
        csv_path = strong_csv(tmp_path)
        code = main(["identify", str(csv_path), "--hidden", "1"])
        out = capsys.readouterr().out
        assert code == 0
        assert "verdict: strong" in out

    def test_bound_command_with_explicit_verdict(self, tmp_path, capsys):
        csv_path = strong_csv(tmp_path)
        code = main(["bound", str(csv_path), "--verdict", "strong",
                     "--hidden", "1", "--bound-symbols", "20"])
        out = capsys.readouterr().out
        assert code == 0
        assert "max queuing delay bound" in out

    def test_clock_command_roundtrip(self, tmp_path, capsys):
        rng = np.random.default_rng(1)
        n = 1500
        send = np.arange(n) * 0.02
        delay = 0.05 + rng.exponential(0.01, n)
        delay[rng.random(n) < 0.1] = 0.05 + 1e-5
        measured = delay + 4e-5 * send
        in_path = tmp_path / "in.csv"
        out_path = tmp_path / "out.csv"
        save_observation(PathObservation(send, measured), in_path)
        code = main(["clock", str(in_path), "--out", str(out_path)])
        out = capsys.readouterr().out
        assert code == 0
        assert "estimated skew" in out
        repaired = load_observation(out_path)
        # The upward drift is gone: late delays no longer exceed early
        # ones systematically.
        early = np.nanmean(repaired.delays[:300])
        late = np.nanmean(repaired.delays[-300:])
        assert abs(late - early) < 0.005

class TestTelemetry:
    MONITOR_ARGS = [
        "monitor", "--demo", "1500", "--window", "600", "--hop", "300",
        "--hidden", "1", "--no-stationarity-gate", "--max-windows", "3",
    ]

    def test_monitor_metrics_file_has_required_series(self, tmp_path, capsys):
        prom = tmp_path / "out.prom"
        code = main(self.MONITOR_ARGS + ["--metrics-file", str(prom)])
        assert code == 0
        assert not obs.is_enabled()  # main() turns its telemetry back off
        text = prom.read_text()
        # Preregistration guarantees the series the CI job scrapes for,
        # even before the first fallback or verdict flip.
        assert 'repro_streaming_fallbacks_total{reason="non-monotone"}' in text
        assert 'repro_window_verdicts_total{verdict="strong"}' in text
        assert "# TYPE repro_windows_total counter" in text
        # Windows actually ran, and stdout stayed pure JSONL.
        events = [json.loads(line)
                  for line in capsys.readouterr().out.splitlines()]
        assert len(events) == 3
        assert all("verdict" in event for event in events)

    def test_monitor_metrics_port_prints_scrape_url(self, tmp_path, capsys):
        code = main(self.MONITOR_ARGS + ["--metrics-port", "0"])
        assert code == 0
        err = capsys.readouterr().err
        assert "metrics: http://127.0.0.1:" in err

    def test_telemetry_file_then_stats(self, tmp_path, capsys):
        events_path = tmp_path / "events.jsonl"
        code = main(self.MONITOR_ARGS + ["--telemetry", str(events_path)])
        assert code == 0
        capsys.readouterr()
        events = [json.loads(line)
                  for line in events_path.read_text().splitlines()]
        assert events
        for event in events:
            assert validate_event(event) == [], event
        assert {"span", "streaming.fit", "window"} <= {
            e["kind"] for e in events
        }

        assert main(["stats", str(events_path)]) == 0
        out = capsys.readouterr().out
        assert "events:" in out
        assert "windows:" in out

        assert main(["stats", str(events_path), "--json"]) == 0
        summary = json.loads(capsys.readouterr().out)
        assert summary["n_events"] == len(events)
        assert summary["windows"]["total"] >= 3

    def test_identify_telemetry_records_em_events(self, tmp_path, capsys):
        csv_path = strong_csv(tmp_path)
        events_path = tmp_path / "events.jsonl"
        code = main(["identify", str(csv_path), "--hidden", "1",
                     "--telemetry", str(events_path)])
        assert code == 0
        kinds = [json.loads(line)["kind"]
                 for line in events_path.read_text().splitlines()]
        assert "em.fit" in kinds
        assert "em.restart" in kinds
        assert "span" in kinds



class TestObservabilityFlags:
    def test_monitor_diagnostic_flags_parse(self):
        parser = build_parser()
        args = parser.parse_args([
            "monitor", "--demo", "--alert-rules", "default",
            "--flight-recorder", "dumps", "--stall-timeout", "30",
            "--profile", "--telemetry-max-bytes", "1000000",
            "--manifest", "m.json",
        ])
        assert args.alert_rules == "default"
        assert args.flight_recorder == "dumps"
        assert args.stall_timeout == 30.0
        assert args.profile
        assert args.telemetry_max_bytes == 1000000
        assert args.manifest == "m.json"
        quiet = parser.parse_args(["monitor", "--demo"])
        assert quiet.alert_rules is None
        assert quiet.flight_recorder is None
        assert quiet.stall_timeout is None
        assert not quiet.profile

    def test_report_command_parses(self):
        parser = build_parser()
        args = parser.parse_args([
            "report", "--events", "a.jsonl", "--events", "b.jsonl",
            "--bench", "BENCH_x.json", "--baseline", "base",
            "--tolerance", "0.1", "--out", "r.html",
            "--title", "t", "--fail-on-regression",
        ])
        assert args.events == ["a.jsonl", "b.jsonl"]
        assert args.bench == ["BENCH_x.json"]
        assert args.baseline == "base"
        assert args.tolerance == 0.1
        assert args.fail_on_regression


class TestProvenanceAndReport:
    def test_telemetry_run_writes_manifest_and_event(self, tmp_path, capsys):
        events_path = tmp_path / "events.jsonl"
        code = main(TestTelemetry.MONITOR_ARGS
                    + ["--telemetry", str(events_path)])
        assert code == 0
        capsys.readouterr()
        manifest_path = tmp_path / "events.manifest.json"
        assert manifest_path.exists()
        manifest = json.loads(manifest_path.read_text())
        assert manifest["command"] == "monitor"
        assert manifest["config"]["__type__"] == "MonitorConfig"
        assert manifest["seeds"]["demo"] == 0
        assert "em" in manifest["seeds"]  # harvested from the EM config
        events = [json.loads(line)
                  for line in events_path.read_text().splitlines()]
        (record,) = [e for e in events if e["kind"] == "run.manifest"]
        assert record["run_id"] == manifest["run_id"]

    def test_explicit_manifest_path_without_telemetry(self, tmp_path,
                                                      capsys):
        csv_path = strong_csv(tmp_path)
        manifest_path = tmp_path / "run.manifest.json"
        code = main(["identify", str(csv_path), "--hidden", "1",
                     "--manifest", str(manifest_path)])
        assert code == 0
        manifest = json.loads(manifest_path.read_text())
        assert manifest["command"] == "identify"
        assert manifest["inputs"] == [str(csv_path)]

    def test_report_command_builds_html_from_monitor_run(self, tmp_path,
                                                         capsys):
        events_path = tmp_path / "events.jsonl"
        assert main(TestTelemetry.MONITOR_ARGS
                    + ["--telemetry", str(events_path)]) == 0
        out_path = tmp_path / "report.html"
        code = main(["report", "--events", str(events_path),
                     "--out", str(out_path)])
        captured = capsys.readouterr()
        assert code == 0
        assert "report written to" in captured.out
        html_text = out_path.read_text(encoding="utf-8")
        assert "<svg" in html_text
        assert "Monitored paths" in html_text
        assert "Provenance" in html_text

    def test_monitor_with_default_alert_rules_stays_quiet(self, tmp_path,
                                                          capsys):
        events_path = tmp_path / "events.jsonl"
        code = main(TestTelemetry.MONITOR_ARGS
                    + ["--telemetry", str(events_path),
                       "--alert-rules", "default"])
        assert code == 0  # healthy demo run: no fatal alerts
        capsys.readouterr()
        kinds = {json.loads(line)["kind"]
                 for line in events_path.read_text().splitlines()}
        assert "alert.fired" not in kinds

    def test_monitor_profile_prints_phase_summary(self, tmp_path, capsys):
        events_path = tmp_path / "events.jsonl"
        code = main(TestTelemetry.MONITOR_ARGS
                    + ["--telemetry", str(events_path), "--profile"])
        assert code == 0
        captured = capsys.readouterr()
        assert "window.fit" in captured.err
        kinds = [json.loads(line)["kind"]
                 for line in events_path.read_text().splitlines()]
        assert "profile.phase" in kinds


class TestSlowCommands:
    @pytest.mark.slow
    def test_simulate_then_identify_then_pinpoint(self, tmp_path, capsys):
        obs_path = tmp_path / "sim.csv"
        trace_path = tmp_path / "sim.npz"
        code = main([
            "simulate", "--scenario", "strong", "--duration", "60",
            "--warmup", "15", "--out", str(obs_path),
            "--trace-out", str(trace_path),
        ])
        assert code == 0
        code = main(["identify", str(obs_path)])
        out = capsys.readouterr().out
        assert code == 0
        assert "verdict: strong" in out
        code = main(["pinpoint", str(trace_path)])
        out = capsys.readouterr().out
        assert code == 0
        assert "r2->r3" in out
