"""Tests for Viterbi decoding."""

import numpy as np
import pytest

from repro.models.base import LOSS, EMConfig, ObservationSequence
from repro.models.decode import decode_loss_symbols, viterbi_hmm, viterbi_mmhd
from repro.models.hmm import HiddenMarkovModel, fit_hmm
from repro.models.mmhd import MarkovModelHiddenDimension, fit_mmhd
from tests.conftest import make_markov_sequence


def sticky_mmhd(n_symbols=3, stick=0.9, loss=0.1):
    n = n_symbols
    pi = np.full(n, 1 / n)
    transition = np.full((n, n), (1 - stick) / (n - 1))
    np.fill_diagonal(transition, stick)
    c = np.full(n, loss)
    return MarkovModelHiddenDimension(pi, transition, c, n)


class TestViterbiMMHD:
    def test_observed_symbols_are_respected(self):
        model = sticky_mmhd()
        seq = ObservationSequence([1, 2, 3, 2, 1], n_symbols=3)
        _, symbols = viterbi_mmhd(model, seq)
        np.testing.assert_array_equal(symbols, [1, 2, 3, 2, 1])

    def test_loss_between_identical_neighbours_decodes_to_them(self):
        model = sticky_mmhd(stick=0.95)
        seq = ObservationSequence([2, 2, LOSS, 2, 2], n_symbols=3)
        _, symbols = viterbi_mmhd(model, seq)
        assert symbols[2] == 2

    def test_decode_loss_symbols_orders_by_loss(self):
        model = sticky_mmhd(stick=0.95)
        seq = ObservationSequence([1, LOSS, 1, 3, LOSS, 3], n_symbols=3)
        decoded = decode_loss_symbols(model, seq)
        np.testing.assert_array_equal(decoded, [1, 3])

    def test_hidden_path_shape(self):
        model = MarkovModelHiddenDimension(
            np.full(6, 1 / 6), np.full((6, 6), 1 / 6), np.full(3, 0.1), 3
        )
        seq = ObservationSequence([1, LOSS, 2], n_symbols=3)
        hidden, symbols = viterbi_mmhd(model, seq)
        assert hidden.shape == symbols.shape == (3,)
        assert set(hidden) <= {0, 1}
        assert all(1 <= s <= 3 for s in symbols)

    def test_decoding_matches_truth_on_fitted_model(self):
        seq, _ = make_markov_sequence(n_steps=3000, seed=11)
        fitted = fit_mmhd(seq, n_hidden=1,
                          config=EMConfig(max_iter=40, tol=1e-3))
        decoded = decode_loss_symbols(fitted.model, seq)
        # Most losses happen at symbol 5 (the generator's design); the
        # decoder should say so for the bulk of them.
        assert (decoded >= 4).mean() > 0.8


class TestViterbiHMM:
    def test_path_shape_and_range(self):
        model = HiddenMarkovModel(
            np.array([0.5, 0.5]),
            np.array([[0.9, 0.1], [0.1, 0.9]]),
            np.array([[0.8, 0.1, 0.1], [0.1, 0.1, 0.8]]),
            np.full(3, 0.1),
        )
        seq = ObservationSequence([1, 1, LOSS, 3, 3], n_symbols=3)
        path = viterbi_hmm(model, seq)
        assert path.shape == (5,)
        assert set(path) <= {0, 1}

    def test_distinct_emission_states_tracked(self):
        # State 0 emits symbol 1, state 1 emits symbol 3.
        model = HiddenMarkovModel(
            np.array([0.5, 0.5]),
            np.array([[0.95, 0.05], [0.05, 0.95]]),
            np.array([[0.98, 0.01, 0.01], [0.01, 0.01, 0.98]]),
            np.full(3, 0.1),
        )
        seq = ObservationSequence([1, 1, 1, 3, 3, 3], n_symbols=3)
        path = viterbi_hmm(model, seq)
        assert (path[:3] == path[0]).all()
        assert (path[3:] == path[3]).all()
        assert path[0] != path[3]


class TestStructuredViterbi:
    """The support-restricted MMHD recursion must reproduce the dense
    reference path exactly — same max, same tie-breaking."""

    def test_matches_dense_on_random_models(self):
        rng = np.random.default_rng(42)
        for _ in range(15):
            n_symbols = int(rng.integers(2, 5))
            n_hidden = int(rng.integers(1, 4))
            n_states = n_hidden * n_symbols
            model = MarkovModelHiddenDimension(
                rng.dirichlet(np.ones(n_states)),
                rng.dirichlet(np.ones(n_states), size=n_states),
                rng.uniform(0.05, 0.4, n_symbols),
                n_symbols,
            )
            symbols = rng.integers(1, n_symbols + 1, 150)
            symbols[rng.random(150) < 0.25] = LOSS
            seq = ObservationSequence(symbols, n_symbols=n_symbols)
            h_fast, s_fast = viterbi_mmhd(model, seq, structured=True)
            h_ref, s_ref = viterbi_mmhd(model, seq, structured=False)
            np.testing.assert_array_equal(h_fast, h_ref)
            np.testing.assert_array_equal(s_fast, s_ref)

    def test_matches_dense_on_fitted_model(self):
        seq, _ = make_markov_sequence(n_steps=3000, seed=19)
        fitted = fit_mmhd(seq, n_hidden=2,
                          config=EMConfig(max_iter=30, tol=1e-3, seed=4))
        h_fast, s_fast = viterbi_mmhd(fitted.model, seq, structured=True)
        h_ref, s_ref = viterbi_mmhd(fitted.model, seq, structured=False)
        np.testing.assert_array_equal(h_fast, h_ref)
        np.testing.assert_array_equal(s_fast, s_ref)

    def test_loss_heavy_and_no_loss_windows(self):
        model = sticky_mmhd(stick=0.9)
        loss_heavy = ObservationSequence([LOSS, LOSS, 2, LOSS], n_symbols=3)
        no_loss = ObservationSequence([1, 2, 3, 2], n_symbols=3)
        for seq in (loss_heavy, no_loss):
            h_fast, s_fast = viterbi_mmhd(model, seq, structured=True)
            h_ref, s_ref = viterbi_mmhd(model, seq, structured=False)
            np.testing.assert_array_equal(h_fast, h_ref)
            np.testing.assert_array_equal(s_fast, s_ref)
