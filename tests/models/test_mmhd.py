"""Tests for the MMHD model (Appendix B EM)."""

import numpy as np
import pytest

from repro.models.base import LOSS, EMConfig, ObservationSequence
from repro.models.mmhd import MarkovModelHiddenDimension, fit_mmhd
from tests.conftest import make_markov_sequence


def uniform_mmhd(n_hidden=1, n_symbols=3, loss=0.1):
    n_states = n_hidden * n_symbols
    pi = np.full(n_states, 1 / n_states)
    transition = np.full((n_states, n_states), 1 / n_states)
    c = np.full(n_symbols, loss)
    return MarkovModelHiddenDimension(pi, transition, c, n_symbols)


class TestConstruction:
    def test_state_count_must_be_multiple_of_symbols(self):
        with pytest.raises(ValueError):
            MarkovModelHiddenDimension(np.full(5, 0.2), np.full((5, 5), 0.2),
                                       np.full(3, 0.1), 3)

    def test_transition_shape_validated(self):
        with pytest.raises(ValueError):
            MarkovModelHiddenDimension(np.full(3, 1 / 3), np.full((2, 2), 0.5),
                                       np.full(3, 0.1), 3)

    def test_loss_vector_length_validated(self):
        with pytest.raises(ValueError):
            MarkovModelHiddenDimension(np.full(3, 1 / 3), np.full((3, 3), 1 / 3),
                                       np.full(2, 0.1), 3)

    def test_state_symbol_mapping(self):
        model = uniform_mmhd(n_hidden=2, n_symbols=3)
        np.testing.assert_array_equal(model.state_symbol, [0, 1, 2, 0, 1, 2])

    def test_degenerates_to_markov_with_one_hidden_state(self):
        model = uniform_mmhd(n_hidden=1, n_symbols=4)
        assert model.n_hidden == 1
        assert model.n_states == 4


class TestLikelihood:
    def test_observed_symbol_constrains_state_column(self):
        model = uniform_mmhd(n_hidden=2, n_symbols=3, loss=0.2)
        likes = model._observation_likelihoods(np.array([1]))
        # Only states with d = 1 (indices 1 and 4) are possible.
        expected = np.zeros(6)
        expected[[1, 4]] = 0.8
        np.testing.assert_allclose(likes[0], expected)

    def test_loss_row_uses_c_of_each_symbol(self):
        model = uniform_mmhd(n_hidden=1, n_symbols=3, loss=0.3)
        likes = model._observation_likelihoods(np.array([LOSS]))
        np.testing.assert_allclose(likes[0], [0.3, 0.3, 0.3])

    def test_uniform_model_likelihood_analytic(self):
        model = uniform_mmhd(n_hidden=1, n_symbols=3, loss=0.2)
        seq = ObservationSequence([1, 2, LOSS], n_symbols=3)
        # Each observed step: P = (1/3)(1-c); the loss step marginalises
        # over the uniform state: sum_d (1/3) c = c.
        expected = 2 * np.log((1 / 3) * 0.8) + np.log(0.2)
        assert model.log_likelihood(seq) == pytest.approx(expected)

    def test_em_monotone_likelihood(self, markov_sequence):
        seq, _ = markov_sequence
        model = uniform_mmhd(n_hidden=2, n_symbols=5)
        previous = model.log_likelihood(seq)
        for _ in range(5):
            model, _ = model.em_step(seq)
            current = model.log_likelihood(seq)
            assert current >= previous - 1e-6
            previous = current


class TestEMFit:
    def test_recovers_true_virtual_delay_distribution(self):
        seq, true_g = make_markov_sequence(seed=5)
        fitted = fit_mmhd(seq, n_hidden=1,
                          config=EMConfig(max_iter=60, freeze_loss_iters=3))
        assert np.abs(fitted.virtual_delay_pmf - true_g).max() < 0.05

    def test_recovers_with_hidden_states(self):
        seq, true_g = make_markov_sequence(seed=6)
        fitted = fit_mmhd(seq, n_hidden=2,
                          config=EMConfig(max_iter=60, freeze_loss_iters=3))
        tv = 0.5 * np.abs(fitted.virtual_delay_pmf - true_g).sum()
        assert tv < 0.1

    def test_results_stable_across_n_hidden(self):
        # Paper: inference results are similar for N = 1..4.
        seq, _ = make_markov_sequence(seed=7, n_steps=4000)
        pmfs = []
        for n_hidden in (1, 2):
            fitted = fit_mmhd(seq, n_hidden=n_hidden,
                              config=EMConfig(max_iter=60, freeze_loss_iters=3))
            pmfs.append(fitted.virtual_delay_pmf)
        tv = 0.5 * np.abs(pmfs[0] - pmfs[1]).sum()
        assert tv < 0.15

    def test_pmf_is_distribution(self, markov_sequence, fast_em):
        seq, _ = markov_sequence
        fitted = fit_mmhd(seq, n_hidden=2, config=fast_em)
        assert fitted.virtual_delay_pmf.sum() == pytest.approx(1.0)
        assert (fitted.virtual_delay_pmf >= 0).all()

    def test_freeze_keeps_c_flat_during_warmup(self, markov_sequence):
        seq, _ = markov_sequence
        model = uniform_mmhd(n_hidden=1, n_symbols=5, loss=seq.loss_rate)
        frozen_c = model.loss_given_symbol.copy()
        new_model, _ = model.em_step(seq)
        # An explicit manual freeze mirrors what fit_mmhd does internally.
        refrozen = MarkovModelHiddenDimension(
            new_model.pi, new_model.transition, frozen_c, 5
        )
        np.testing.assert_array_equal(refrozen.loss_given_symbol, frozen_c)

    def test_deterministic_given_seed(self, markov_sequence):
        seq, _ = markov_sequence
        config = EMConfig(max_iter=20, seed=9)
        a = fit_mmhd(seq, n_hidden=2, config=config).virtual_delay_pmf
        b = fit_mmhd(seq, n_hidden=2, config=config).virtual_delay_pmf
        np.testing.assert_array_equal(a, b)

    def test_handles_very_low_loss_rate(self):
        seq, true_g = make_markov_sequence(
            seed=8, n_steps=8000,
            loss_given_symbol=(0.0, 0.0, 0.0, 0.002, 0.02),
        )
        fitted = fit_mmhd(seq, n_hidden=1,
                          config=EMConfig(max_iter=60, freeze_loss_iters=3))
        assert fitted.virtual_delay_pmf[3:].sum() > 0.8

    def test_no_losses_raises_in_posterior(self):
        model = uniform_mmhd()
        seq = ObservationSequence([1, 2, 3], n_symbols=3)
        with pytest.raises(ValueError):
            model.virtual_delay_pmf(seq)


class TestLossFreeGuards:
    """Loss-free sequences fail fast with an actionable message."""

    def test_em_step_raises_with_loss_count(self):
        model = uniform_mmhd()
        seq = ObservationSequence([1, 2, 3, 2], n_symbols=3)
        with pytest.raises(ValueError, match="0 losses in 4 observations"):
            model.em_step(seq)

    def test_fit_raises_before_any_em_work(self):
        seq = ObservationSequence([1, 2, 3, 2, 1], n_symbols=3)
        with pytest.raises(ValueError, match="fit_mmhd requires lost probes"):
            fit_mmhd(seq, n_hidden=2)

    def test_posterior_message_names_the_operation(self):
        model = uniform_mmhd()
        seq = ObservationSequence([1, 2, 3], n_symbols=3)
        with pytest.raises(ValueError, match="virtual_delay_pmf"):
            model.virtual_delay_pmf(seq)

    def test_sequence_with_losses_unaffected(self):
        model = uniform_mmhd()
        seq = ObservationSequence([1, LOSS, 3, 2], n_symbols=3)
        pmf = model.virtual_delay_pmf(seq)
        assert pmf.shape == (3,)
        assert pmf.sum() == pytest.approx(1.0)
