"""Goodness-of-fit diagnostics: values in model, guards out of model."""

import numpy as np
import pytest

from repro.models.base import LOSS, EMConfig, ObservationSequence
from repro.models.diagnostics import (WindowDiagnostics,
                                      compute_window_diagnostics)
from repro.models.hmm import fit_hmm
from repro.models.mmhd import fit_mmhd
from tests.conftest import make_markov_sequence

EM = EMConfig(max_iter=30, n_restarts=1, seed=0)


@pytest.fixture(scope="module")
def fitted_window():
    seq, _ = make_markov_sequence(n_steps=3000, seed=1)
    fitted = fit_hmm(seq, 2, EM)
    return fitted, seq


class TestInModelValues:
    def test_ok_with_all_statistics_populated(self, fitted_window):
        fitted, seq = fitted_window
        diag = compute_window_diagnostics(
            fitted.model, seq, g_pmf=fitted.virtual_delay_pmf)
        assert diag.ok
        assert diag.n_obs == len(seq)
        assert diag.n_losses == seq.n_losses
        assert diag.counts.sum() == pytest.approx(len(seq))
        assert diag.expected_counts.shape == diag.counts.shape
        assert diag.dwell_gap is not None and diag.n_runs >= 10
        assert diag.below_bound_mass is not None
        assert 0.0 <= diag.below_bound_mass <= 1.0

    def test_mean_loglik_matches_the_model(self, fitted_window):
        fitted, seq = fitted_window
        diag = compute_window_diagnostics(fitted.model, seq)
        expected = fitted.model.log_likelihood(seq) / len(seq)
        assert diag.mean_loglik == pytest.approx(expected)

    def test_predictive_counts_sum_to_sequence_length(self, fitted_window):
        fitted, seq = fitted_window
        diag = compute_window_diagnostics(fitted.model, seq)
        # Per step the predictive mass over symbols+loss is exactly 1.
        assert diag.expected_counts.sum() == pytest.approx(len(seq))

    def test_in_model_emission_z_is_moderate(self, fitted_window):
        fitted, seq = fitted_window
        diag = compute_window_diagnostics(fitted.model, seq)
        # The fit saw this very window; its residual z must not look
        # like drift (the health ramp starts discounting at z=4).
        assert abs(diag.emission_z) < 4.0

    def test_loss_rate_gap_small_in_model(self, fitted_window):
        fitted, seq = fitted_window
        diag = compute_window_diagnostics(fitted.model, seq)
        assert diag.loss_rate_gap < 0.5

    def test_mmhd_duck_types(self):
        seq, _ = make_markov_sequence(n_steps=2000, n_symbols=4,
                                      loss_given_symbol=(0.005, 0.01,
                                                         0.05, 0.4),
                                      seed=3)
        fitted = fit_mmhd(seq, 2, EM)
        diag = compute_window_diagnostics(
            fitted.model, seq, g_pmf=fitted.virtual_delay_pmf)
        assert diag.ok
        assert diag.counts.size == seq.n_symbols + 1
        expected = fitted.model.log_likelihood(seq) / len(seq)
        assert diag.mean_loglik == pytest.approx(expected)


class TestOutOfModelShift:
    def test_emission_break_inflates_the_residual(self, fitted_window):
        fitted, seq = fitted_window
        in_model = compute_window_diagnostics(fitted.model, seq)
        # Score a window drawn from a very different symbol law under
        # the same fitted model: the residual z must blow up.
        rng = np.random.default_rng(9)
        shifted = rng.integers(4, 6, size=len(seq))  # top symbols only
        lost = rng.random(len(seq)) < 0.02
        shifted[lost] = LOSS
        broken = compute_window_diagnostics(
            fitted.model, ObservationSequence(shifted, seq.n_symbols))
        assert broken.ok
        assert broken.emission_z > 10 * max(abs(in_model.emission_z), 1.0)
        assert broken.mean_loglik < in_model.mean_loglik


class TestDegenerateGuards:
    def test_no_losses_is_not_ok(self, fitted_window):
        fitted, _ = fitted_window
        seq = ObservationSequence([1, 2, 3, 2, 1] * 20, n_symbols=5)
        diag = compute_window_diagnostics(fitted.model, seq)
        assert not diag.ok
        assert diag.reason == "no-losses"
        assert diag.mean_loglik is None

    def test_short_sequences_skip_the_dwell_statistic(self, fitted_window):
        fitted, _ = fitted_window
        seq = ObservationSequence([1, LOSS, 2, 2, 1], n_symbols=5)
        diag = compute_window_diagnostics(fitted.model, seq)
        assert diag.ok
        assert diag.dwell_gap is None  # < _MIN_RUNS observed runs

    def test_missing_g_pmf_skips_the_bound_margin(self, fitted_window):
        fitted, seq = fitted_window
        diag = compute_window_diagnostics(fitted.model, seq, g_pmf=None)
        # HMM's virtual_delay_pmf needs a sequence argument, so without
        # an explicit pmf the bound-margin check is skipped, not wrong.
        assert diag.ok
        assert diag.below_bound_mass is None


class TestSerialization:
    def test_to_dict_rounds_and_drops_arrays(self, fitted_window):
        fitted, seq = fitted_window
        payload = compute_window_diagnostics(
            fitted.model, seq, g_pmf=fitted.virtual_delay_pmf).to_dict()
        assert set(payload) == {
            "ok", "reason", "n_obs", "n_losses", "n_runs", "mean_loglik",
            "emission_z", "dwell_gap", "loss_rate_gap", "below_bound_mass",
        }
        import json
        json.dumps(payload)  # arrays stay out of the JSON projection

    def test_diagnostics_are_picklable(self, fitted_window):
        import pickle

        fitted, seq = fitted_window
        diag = compute_window_diagnostics(fitted.model, seq)
        clone = pickle.loads(pickle.dumps(diag))
        assert clone.ok == diag.ok
        assert clone.mean_loglik == diag.mean_loglik
        np.testing.assert_array_equal(clone.counts, diag.counts)

    def test_not_ok_to_dict_is_stable(self):
        diag = WindowDiagnostics(False, reason="no-losses", n_obs=7)
        assert diag.to_dict() == {
            "ok": False, "reason": "no-losses", "n_obs": 7, "n_losses": 0,
            "n_runs": 0, "mean_loglik": None, "emission_z": None,
            "dwell_gap": None, "loss_rate_gap": None,
            "below_bound_mass": None,
        }
