"""Property tests for the blocked-scan forward-backward kernel.

The blocked kernel replaces the per-time-step Python loop with composed
operator blocks; these tests pin its contracts:

- numerical parity with the loop kernels for every block-size shape
  (``B = 1``, ``B`` not dividing ``T``, ``B >= T``, single-step rows),
  uniform and ragged;
- the *exact* padded-region carry semantics of the ragged loop kernel,
  and bitwise independence of a row's results from its batch composition
  (the fused-equals-solo contract, guaranteed by the pinned ragged block
  size);
- float32 operation within tolerance, underflow detection, and the
  automatic one-shot demotion to float64;
- workspace reuse (no per-iteration reallocation of the big buffers);
- graceful degradation of the optional compiled backend when numba is
  absent, and telemetry that reports what actually ran.
"""

import io
import json

import numpy as np
import pytest

from repro import obs
from repro.models import compiled
from repro.models.base import EMConfig, SymbolIndex, SymbolStack
from repro.models.batched import (
    BATCH_BACKENDS,
    BLOCKED_STATE_LIMIT,
    RAGGED_BLOCK_SIZE,
    _batched_forward_backward,
    _BatchZeroLikelihood,
    _blocked_forward_backward,
    _check_scales,
    _EStepAux,
    _ragged_forward_backward,
    _RaggedAux,
    _resolve_kernel,
    _Workspace,
    batched_restart_fits,
    resolve_backend,
    resolve_block_size,
    run_estep,
    run_hedged_fit,
    run_hedged_fits,
)
from repro.models.hmm import fit_hmm
from repro.obs.provenance import config_to_dict, em_config_from_dict
from tests.conftest import make_markov_sequence

RTOL = 1e-9


def random_problem(rng, n_steps, n_rows, n):
    pi = rng.dirichlet(np.ones(n), size=n_rows)
    transition = rng.dirichlet(np.ones(n), size=(n_rows, n))
    likes = rng.uniform(0.01, 1.0, size=(n_steps, n_rows, n))
    return pi, transition, likes


def assert_parity(ref, out, rtol=RTOL):
    for name, a, b in zip(("alpha", "beta", "scales"), ref, out):
        np.testing.assert_allclose(a, b, rtol=rtol, atol=0.0,
                                   err_msg=name)


class TestUniformParity:
    @pytest.mark.parametrize("n_steps,n", [(2, 2), (5, 3), (97, 2),
                                           (256, 2), (513, 4)])
    def test_matches_loop_kernel_across_block_sizes(self, n_steps, n):
        rng = np.random.default_rng(n_steps * 10 + n)
        pi, transition, likes = random_problem(rng, n_steps, 6, n)
        a, b, s, ll = _batched_forward_backward(pi, transition, likes)
        ref = (a.copy(), b.copy(), s.copy())
        ll = ll.copy()
        # B = 1, B not dividing T, B = T, B > T, and the auto choice.
        for block in (1, 3, 16, n_steps, 2 * n_steps, None):
            out = _blocked_forward_backward(pi, transition, likes,
                                            block_size=block)
            assert_parity(ref, out)
            np.testing.assert_allclose(
                np.log(out[2].T).sum(axis=1), ll, rtol=RTOL
            )

    def test_single_step_sequence(self):
        rng = np.random.default_rng(0)
        pi, transition, likes = random_problem(rng, 1, 4, 2)
        a, b, s, _ = _batched_forward_backward(pi, transition, likes)
        out = _blocked_forward_backward(pi, transition, likes, block_size=8)
        assert_parity((a, b, s), out)
        assert (out[1] == 1.0).all()

    def test_zero_likelihood_raises_like_loop(self):
        rng = np.random.default_rng(1)
        pi, transition, likes = random_problem(rng, 40, 3, 2)
        likes[25, 1] = 0.0
        with pytest.raises(_BatchZeroLikelihood) as exc:
            _blocked_forward_backward(pi, transition, likes, block_size=8)
        assert 1 in exc.value.first_bad_t
        assert exc.value.first_bad_t[1] == 25


class TestRaggedParity:
    def lengths_case(self, rng, lengths, n=2, block=7):
        lengths = np.asarray(lengths)
        n_rows, t_max = len(lengths), int(lengths.max())
        pi = rng.dirichlet(np.ones(n), size=n_rows)
        transition = rng.dirichlet(np.ones(n), size=(n_rows, n))
        likes = np.zeros((t_max, n_rows, n))
        for k, t_r in enumerate(lengths):
            likes[:t_r, k] = rng.uniform(0.01, 1.0, size=(t_r, n))
        ref = _ragged_forward_backward(pi, transition, likes, lengths)
        ref = tuple(x.copy() for x in ref)
        out = _blocked_forward_backward(pi, transition, likes,
                                        block_size=block, lengths=lengths)
        return lengths, ref, out

    @pytest.mark.parametrize("lengths", [
        [40, 23, 7, 40], [64, 1, 33], [5, 5, 5], [129, 64, 2, 100]
    ])
    def test_matches_ragged_loop_kernel(self, lengths):
        rng = np.random.default_rng(sum(lengths))
        lengths, ref, out = self.lengths_case(rng, lengths)
        t_max = int(lengths.max())
        for k, t_r in enumerate(lengths):
            for a, b in zip(ref, out):
                np.testing.assert_allclose(a[:t_r, k], b[:t_r, k],
                                           rtol=RTOL, atol=0.0)
            # The padded region is *exact*: carried alpha, unit scales
            # and betas, bit for bit what the loop kernel produces.
            alpha, beta, scales = out
            assert np.array_equal(
                alpha[t_r:, k],
                np.broadcast_to(alpha[t_r - 1, k], (t_max - t_r, 2)),
            )
            assert (scales[t_r:, k] == 1.0).all()
            assert (beta[t_r - 1:, k] == 1.0).all()

    def test_solo_row_bit_identical_to_fused_stack(self):
        """A row's results must not depend on its batch's t_max — the
        contract that keeps fused drains byte-identical to solo fits."""
        rng = np.random.default_rng(7)
        lengths = np.array([200, 73, 200, 9, 128])
        n = 2
        pi = rng.dirichlet(np.ones(n), size=len(lengths))
        transition = rng.dirichlet(np.ones(n), size=(len(lengths), n))
        likes = np.zeros((200, len(lengths), n))
        for k, t_r in enumerate(lengths):
            likes[:t_r, k] = rng.uniform(0.01, 1.0, size=(t_r, n))
        fused = _blocked_forward_backward(
            pi, transition, likes, block_size=RAGGED_BLOCK_SIZE,
            lengths=lengths,
        )
        fused = tuple(x.copy() for x in fused)
        for k, t_r in enumerate(lengths):
            solo = _blocked_forward_backward(
                pi[k:k + 1], transition[k:k + 1],
                np.ascontiguousarray(likes[:t_r, k:k + 1]),
                block_size=RAGGED_BLOCK_SIZE, lengths=np.array([t_r]),
            )
            for a, b in zip(fused, solo):
                assert np.array_equal(a[:t_r, k], b[:, 0]), k


class TestFloat32:
    def test_kernel_tolerance_parity(self):
        rng = np.random.default_rng(3)
        pi, transition, likes = random_problem(rng, 400, 4, 2)
        ref = _batched_forward_backward(pi, transition, likes)[:3]
        out32 = _blocked_forward_backward(
            pi.astype(np.float32), transition.astype(np.float32),
            likes.astype(np.float32), block_size=16,
        )
        for a, b in zip(ref, out32):
            assert b.dtype == np.float32
            np.testing.assert_allclose(a, b.astype(np.float64), rtol=1e-4)

    def test_float32_underflow_raises(self):
        """Likelihoods below the float32 range must surface as a
        zero-likelihood collapse, not silently corrupt the fit."""
        rng = np.random.default_rng(4)
        pi, transition, likes = random_problem(rng, 30, 2, 2)
        likes[10, 0] = 1e-50  # zero after the float32 cast
        f32 = (pi.astype(np.float32), transition.astype(np.float32),
               likes.astype(np.float32))
        with pytest.raises(_BatchZeroLikelihood):
            _blocked_forward_backward(*f32, block_size=8)
        # The same problem is fine at float64.
        _blocked_forward_backward(pi, transition, likes, block_size=8)

    def test_run_estep_demotes_once_then_retries(self):
        seq, _ = make_markov_sequence(n_steps=300, seed=5)
        aux = _EStepAux("hmm", SymbolIndex(seq), EMConfig(dtype="float32"),
                        2, backend="blocked")
        assert aux.dtype == np.float32

        class FakeBatch:
            calls = 0

            def estep(self, aux):
                FakeBatch.calls += 1
                if aux.dtype == np.float32:
                    raise _BatchZeroLikelihood(0, np.array([0]))
                return "recovered"

        assert run_estep(FakeBatch(), aux) == "recovered"
        assert FakeBatch.calls == 2
        assert aux.dtype == np.float64
        assert aux.dtype_fallbacks == 1
        # Already at float64: the collapse is genuine and propagates.
        class DeadBatch:
            def estep(self, aux):
                raise _BatchZeroLikelihood(3, np.array([1]))

        with pytest.raises(_BatchZeroLikelihood):
            run_estep(DeadBatch(), aux)
        assert aux.dtype_fallbacks == 1

    def test_fit_level_tolerance_parity(self):
        seq, _ = make_markov_sequence(n_steps=1200, seed=23)
        base = EMConfig(tol=1e-3, max_iter=15, n_restarts=2, seed=9,
                        freeze_loss_iters=2, backend="blocked")
        f64 = fit_hmm(seq, 2, config=base)
        f32 = fit_hmm(seq, 2, config=base.replace(dtype="float32"))
        assert np.isclose(f32.log_likelihood, f64.log_likelihood,
                          rtol=1e-2)
        np.testing.assert_allclose(f32.virtual_delay_pmf,
                                   f64.virtual_delay_pmf, atol=1e-2)


class TestWorkspace:
    def test_reuses_buffers_across_calls(self):
        ws = _Workspace()
        a = ws.get("x", (100, 3), np.float64)
        b = ws.get("x", (50, 2), np.float64)
        assert np.shares_memory(a, b)
        wide = ws.get("x", (200, 3), np.float64)  # grows: reallocates
        assert not np.shares_memory(a, wide)
        narrow = ws.get("x", (10,), np.float32)  # dtype change
        assert narrow.dtype == np.float32

    @pytest.mark.parametrize("kernel_call", ["loop", "blocked"])
    def test_no_large_allocations_after_warmup(self, monkeypatch,
                                               kernel_call):
        """Second pass with a shared workspace must not allocate any
        full-size buffer — the per-iteration allocation regression."""
        rng = np.random.default_rng(11)
        pi, transition, likes = random_problem(rng, 500, 4, 2)
        ws = _Workspace()

        def run():
            if kernel_call == "loop":
                return _batched_forward_backward(pi, transition, likes,
                                                 workspace=ws)
            return _blocked_forward_backward(pi, transition, likes,
                                             block_size=16, workspace=ws)

        run()  # warm the workspace
        big = []
        real_empty = np.empty

        def counting_empty(*args, **kwargs):
            arr = real_empty(*args, **kwargs)
            if arr.size >= 1024:
                big.append(arr.size)
            return arr

        monkeypatch.setattr(np, "empty", counting_empty)
        run()
        assert big == []


class TestResolution:
    def test_resolve_block_size(self):
        # Ragged batches pin to the fixed block size.
        assert resolve_block_size(None) == RAGGED_BLOCK_SIZE
        # sqrt(3T) rounded to the measured-best powers of two.
        assert resolve_block_size(10000, 2) == 128
        assert resolve_block_size(100, 2) == 32
        assert resolve_block_size(1, 2) == 32
        # Wide states cap the scan working set.
        assert resolve_block_size(100000, 2) == 256
        assert resolve_block_size(100000, 10) == 128

    def test_resolve_kernel_fallbacks(self):
        if compiled.HAVE_NUMBA:  # pragma: no cover - container lacks numba
            assert _resolve_kernel("compiled", 2) == ("compiled", None)
        else:
            assert _resolve_kernel("compiled", 2) == ("blocked",
                                                      "numba-missing")
            assert _resolve_kernel("compiled", BLOCKED_STATE_LIMIT + 1) == (
                "loop", "numba-missing")
        assert _resolve_kernel("blocked", 2) == ("blocked", None)
        assert _resolve_kernel("batched", 2) == ("loop", None)

    def test_backends_frozen(self):
        assert {"batched", "blocked", "compiled"} == set(BATCH_BACKENDS)
        assert resolve_backend(EMConfig(backend="blocked"), "mmhd", 4, 5) \
            == "blocked"

    def test_config_validation_and_env(self, monkeypatch):
        with pytest.raises(ValueError, match="dtype"):
            EMConfig(dtype="float16")
        with pytest.raises(ValueError, match="block_size"):
            EMConfig(block_size=0)
        monkeypatch.setenv("REPRO_EM_DTYPE", "float32")
        monkeypatch.setenv("REPRO_EM_BLOCK_SIZE", "48")
        config = EMConfig()
        assert config.dtype == "float32"
        assert config.block_size == 48
        assert config.replace(seed=1).dtype == "float32"
        monkeypatch.setenv("REPRO_EM_DTYPE", "float128")
        with pytest.raises(ValueError, match="dtype"):
            EMConfig()

    def test_provenance_round_trip(self):
        config = EMConfig(dtype="float32", block_size=96, backend="blocked")
        restored = em_config_from_dict(config_to_dict(config))
        assert restored.dtype == "float32"
        assert restored.block_size == 96
        assert restored.backend == "blocked"

    def test_check_scales_reports_every_poisoned_row(self):
        scales = np.ones((6, 4))
        scales[3, 1] = 0.0
        scales[1, 3] = np.nan
        scales[4:, 3] = 0.0
        with pytest.raises(_BatchZeroLikelihood) as exc:
            _check_scales(scales)
        assert exc.value.t == 1
        assert exc.value.first_bad_t == {1: 3, 3: 1}
        assert sorted(exc.value.rows.tolist()) == [1, 3]


class TestFitParity:
    @pytest.mark.parametrize("backend", ["blocked", "compiled"])
    def test_blocked_fit_matches_batched_fit(self, backend):
        """Same winner, same trajectory length, loglik within parity
        tolerance — the fit-level acceptance contract (``compiled``
        degrades to the blocked kernel in numba-less environments)."""
        seq, _ = make_markov_sequence(n_steps=1500, seed=29)
        config = EMConfig(tol=1e-3, max_iter=20, n_restarts=3, seed=3,
                          freeze_loss_iters=2)
        ref = fit_hmm(seq, 2, config=config.replace(backend="batched"))
        out = fit_hmm(seq, 2, config=config.replace(backend=backend))
        assert out.n_iter == ref.n_iter
        assert np.isclose(out.log_likelihood, ref.log_likelihood,
                          rtol=RTOL)
        np.testing.assert_allclose(out.virtual_delay_pmf,
                                   ref.virtual_delay_pmf, rtol=1e-6)

    def test_hedged_fit_matches_across_kernels(self):
        seq, _ = make_markov_sequence(n_steps=900, seed=31)
        config = EMConfig(tol=1e-3, max_iter=15, n_restarts=2, seed=5)
        cold = fit_hmm(seq, 2, config=config.replace(backend="batched"))
        results = {}
        for backend in ("batched", "blocked"):
            fitted, warm_used, reason = run_hedged_fit(
                "hmm", seq, 2, config, cold.model, lambda trail: None,
                backend=backend,
            )
            assert warm_used and reason is None
            results[backend] = fitted
        assert np.isclose(results["blocked"].log_likelihood,
                          results["batched"].log_likelihood, rtol=RTOL)

    def test_ragged_kernel_is_pinned_regardless_of_config(self):
        seq, _ = make_markov_sequence(n_steps=300, seed=2)
        stack = SymbolStack([seq])
        aux = _RaggedAux("hmm", stack, EMConfig(), 2, backend="blocked")
        assert aux.block_size == RAGGED_BLOCK_SIZE
        explicit = _RaggedAux("hmm", stack, EMConfig(block_size=32), 2,
                              backend="blocked")
        assert explicit.block_size == 32


class TestTelemetry:
    def events(self, sink):
        return [json.loads(line) for line in sink.getvalue().splitlines()]

    def test_backend_event_reports_kernel_dtype_block(self):
        seq, _ = make_markov_sequence(n_steps=800, seed=41)
        sink = io.StringIO()
        obs.enable(events=sink, clear=True)
        try:
            config = EMConfig(tol=1e-3, max_iter=5, n_restarts=2, seed=1,
                              backend="blocked")
            batched_restart_fits("hmm", seq, 2, config, backend="blocked")
        finally:
            obs.disable()
        (event,) = [e for e in self.events(sink)
                    if e["kind"] == "em.backend"]
        assert event["backend"] == "blocked"
        assert event["kernel"] == "blocked"
        assert event["dtype"] == "float64"
        assert event["block_size"] >= 1
        assert event["dtype_fallbacks"] == 0

    def test_compiled_fallback_is_visible(self):
        if compiled.HAVE_NUMBA:  # pragma: no cover
            pytest.skip("numba present: no fallback to observe")
        seq, _ = make_markov_sequence(n_steps=800, seed=43)
        sink = io.StringIO()
        obs.enable(events=sink, clear=True)
        try:
            config = EMConfig(tol=1e-3, max_iter=5, n_restarts=2, seed=1,
                              backend="compiled")
            batched_restart_fits("hmm", seq, 2, config, backend="compiled")
        finally:
            obs.disable()
        (event,) = [e for e in self.events(sink)
                    if e["kind"] == "em.backend"]
        assert event["backend"] == "compiled"
        assert event["kernel"] == "blocked"
        assert event["kernel_fallback"] == "numba-missing"


class TestCompiledReference:
    def test_python_reference_matches_loop_kernels(self):
        rng = np.random.default_rng(13)
        pi, transition, likes = random_problem(rng, 60, 3, 2)
        n_steps, n_rows, n = likes.shape
        alpha = np.empty_like(likes)
        beta = np.empty_like(likes)
        scales = np.empty((n_steps, n_rows))
        compiled._py_reference_forward_backward(
            pi, transition, likes, np.full(n_rows, n_steps),
            alpha, beta, scales,
        )
        ref = _batched_forward_backward(pi, transition, likes)
        assert_parity(ref[:3], (alpha, beta, scales), rtol=1e-12)

    def test_python_reference_ragged_carry(self):
        rng = np.random.default_rng(14)
        lengths = np.array([50, 20, 1])
        pi, transition, likes = random_problem(rng, 50, 3, 2)
        for k, t_r in enumerate(lengths):
            likes[t_r:, k] = 0.0
        alpha = np.empty_like(likes)
        beta = np.empty_like(likes)
        scales = np.empty((50, 3))
        compiled._py_reference_forward_backward(
            pi, transition, likes, lengths, alpha, beta, scales,
        )
        ref = _ragged_forward_backward(pi, transition, likes, lengths)
        for k, t_r in enumerate(lengths):
            for a, b in zip(ref, (alpha, beta, scales)):
                np.testing.assert_allclose(a[:t_r, k], b[:t_r, k],
                                           rtol=1e-12)
            assert (scales[t_r:, k] == 1.0).all()

    def test_compiled_raises_without_numba(self):
        if compiled.HAVE_NUMBA:  # pragma: no cover
            pytest.skip("numba present")
        with pytest.raises(RuntimeError, match="numba"):
            compiled.compiled_forward_backward(
                None, None, None, None, None, None, None
            )

    @pytest.mark.skipif(not compiled.HAVE_NUMBA,
                        reason="numba not installed")
    def test_compiled_matches_python_reference(self):
        rng = np.random.default_rng(15)
        pi, transition, likes = random_problem(rng, 80, 4, 2)
        lengths = np.array([80, 33, 80, 1])
        ref = tuple(np.empty_like(x) for x in
                    (likes, likes, likes[:, :, 0]))
        compiled._py_reference_forward_backward(
            pi, transition, likes, lengths, *ref
        )
        out = tuple(np.empty_like(x) for x in
                    (likes, likes, likes[:, :, 0]))
        compiled.compiled_forward_backward(
            pi, transition, likes, lengths, *out
        )
        for a, b in zip(ref, out):
            np.testing.assert_allclose(a, b, rtol=1e-13)


class TestFusedDrainAcrossKernels:
    def test_hedged_windows_agree_across_kernels(self):
        """The fused drain's verdict-bearing outputs agree whichever
        kernel runs the mega-batch (float64)."""
        seqs = []
        for i, n_steps in enumerate((700, 450, 700)):
            seq, _ = make_markov_sequence(n_steps=n_steps, seed=50 + i)
            seqs.append(seq)
        config = EMConfig(tol=1e-3, max_iter=12, n_restarts=2, seed=8)
        warm = [
            fit_hmm(s, 2, config=config.replace(backend="batched")).model
            for s in seqs
        ]
        outputs = {}
        for backend in ("batched", "blocked"):
            results, info = run_hedged_fits(
                "hmm", seqs, 2, [config] * len(seqs), list(warm),
                lambda trail: None, backend=backend,
            )
            assert info["kernel"] == ("loop" if backend == "batched"
                                      else "blocked")
            outputs[backend] = results
        for (fa, wa, ra), (fb, wb, rb) in zip(outputs["batched"],
                                              outputs["blocked"]):
            assert (wa, ra) == (wb, rb)
            assert fa.n_iter == fb.n_iter
            assert np.isclose(fa.log_likelihood, fb.log_likelihood,
                              rtol=RTOL)
            np.testing.assert_allclose(fa.virtual_delay_pmf,
                                       fb.virtual_delay_pmf, rtol=1e-6)
