"""Property tests for the batched restart-stacked E-step engine.

The batched backend promises *parity*, not approximation: same seeds in,
same trajectories out.  These tests pin that promise against the
sequential engine for both model families — per-restart log-likelihood
trails, gamma/xi sufficient statistics, and the winning restart — plus
the edge cases the masking logic has to get right (all restarts
converging early, a single-restart batch) and the backend-resolution
knob itself.
"""

import os

import numpy as np
import pytest

from repro.models import batched
from repro.models.base import EMConfig, SymbolIndex
from repro.models.batched import (
    BATCHED_STATE_LIMIT,
    _EStepAux,
    _BATCH_TYPES,
    batched_restart_fits,
    resolve_backend,
)
from repro.models.hmm import _fit_hmm_restart, fit_hmm
from repro.models.mmhd import _fit_mmhd_restart, fit_mmhd
from tests.conftest import make_markov_sequence

KINDS = [
    ("hmm", fit_hmm, _fit_hmm_restart),
    ("mmhd", fit_mmhd, _fit_mmhd_restart),
]


@pytest.fixture(scope="module")
def seq():
    sequence, _ = make_markov_sequence(n_steps=2500, seed=17)
    return sequence


def sequential_fits(seq, kind, restart_worker, config):
    index = SymbolIndex(seq)
    return [
        restart_worker((seq, 2, config, restart, index))
        for restart in range(config.n_restarts)
    ]


class TestBackendParity:
    @pytest.mark.parametrize("kind,fit,restart_worker", KINDS)
    def test_identical_trajectories_and_winner(self, seq, kind, fit,
                                               restart_worker):
        config = EMConfig(tol=1e-3, max_iter=30, n_restarts=3, seed=11,
                          freeze_loss_iters=2)
        batched_fits = batched_restart_fits(kind, seq, 2, config)
        seq_fits = sequential_fits(seq, kind, restart_worker, config)
        assert len(batched_fits) == config.n_restarts
        for b, s in zip(batched_fits, seq_fits):
            assert b.n_iter == s.n_iter
            assert b.converged == s.converged
            np.testing.assert_allclose(
                b.log_likelihoods, s.log_likelihoods, rtol=1e-9
            )
            np.testing.assert_allclose(
                b.virtual_delay_pmf, s.virtual_delay_pmf, rtol=1e-9
            )
            for pb, ps in zip(b.model.parameters(), s.model.parameters()):
                np.testing.assert_allclose(pb, ps, rtol=1e-9)
        # Identical winning restart — tolerance 0 on the argmax.
        batched_winner = int(np.argmax(
            [f.log_likelihood for f in batched_fits]
        ))
        seq_winner = int(np.argmax([f.log_likelihood for f in seq_fits]))
        assert batched_winner == seq_winner

    @pytest.mark.parametrize("kind,fit,restart_worker", KINDS)
    def test_gamma_xi_statistics_match(self, seq, kind, fit, restart_worker):
        """The batched E-step's sufficient statistics row-match the
        sequential E-step run model-by-model."""
        config = EMConfig(n_restarts=3, seed=23)
        index = SymbolIndex(seq)
        aux = _EStepAux(kind, index, config, 2)
        models = [
            batched._initial_model(kind, seq, 2, config, r)
            for r in range(3)
        ]
        batch = _BATCH_TYPES[kind].from_models(models)
        stats = batch.estep(aux)
        for row, model in enumerate(models):
            if kind == "mmhd":
                ref = model._estep(index, fast=config.fast_path)
                np.testing.assert_allclose(stats.loss_mass[row],
                                           ref.loss_mass, rtol=1e-9)
                np.testing.assert_allclose(stats.total_mass[row],
                                           ref.total_mass, rtol=1e-9)
            else:
                ref = model._estep(index)
                np.testing.assert_allclose(stats.joint_obs[row],
                                           ref.joint_obs, rtol=1e-9)
                np.testing.assert_allclose(stats.joint_loss[row],
                                           ref.joint_loss, rtol=1e-9)
            np.testing.assert_allclose(stats.gamma0[row], ref.gamma0,
                                       rtol=1e-9)
            np.testing.assert_allclose(stats.xi_sum[row], ref.xi_sum,
                                       rtol=1e-9)
            np.testing.assert_allclose(stats.loglik[row], ref.loglik,
                                       rtol=1e-12)

    @pytest.mark.parametrize("kind,fit,restart_worker", KINDS)
    def test_fit_level_parity(self, seq, kind, fit, restart_worker):
        """End to end through fit_hmm/fit_mmhd with the backend knob."""
        base = EMConfig(tol=1e-3, max_iter=30, n_restarts=3, seed=5,
                        freeze_loss_iters=2)
        b = fit(seq, 2, config=base.replace(backend="batched"))
        s = fit(seq, 2, config=base.replace(backend="sequential"))
        assert abs(b.log_likelihood - s.log_likelihood) <= (
            1e-9 * abs(s.log_likelihood)
        )
        assert b.n_iter == s.n_iter
        np.testing.assert_allclose(b.virtual_delay_pmf,
                                   s.virtual_delay_pmf, rtol=1e-9)

    @pytest.mark.parametrize("kind,fit,restart_worker", KINDS)
    def test_all_restarts_converge_early(self, seq, kind, fit,
                                         restart_worker):
        """A huge tolerance converges every row on its first unfrozen
        iteration; the masking bookkeeping must still finalize all."""
        config = EMConfig(tol=1e6, max_iter=30, n_restarts=3, seed=3,
                          freeze_loss_iters=1)
        batched_fits = batched_restart_fits(kind, seq, 2, config)
        seq_fits = sequential_fits(seq, kind, restart_worker, config)
        for b, s in zip(batched_fits, seq_fits):
            assert b.converged and s.converged
            assert b.n_iter == s.n_iter == 2
            np.testing.assert_allclose(
                b.log_likelihoods, s.log_likelihoods, rtol=1e-9
            )

    @pytest.mark.parametrize("kind,fit,restart_worker", KINDS)
    def test_single_restart(self, seq, kind, fit, restart_worker):
        config = EMConfig(tol=1e-3, max_iter=25, n_restarts=1, seed=9,
                          freeze_loss_iters=2)
        (b,) = batched_restart_fits(kind, seq, 2, config)
        (s,) = sequential_fits(seq, kind, restart_worker, config)
        assert b.n_iter == s.n_iter
        np.testing.assert_allclose(b.log_likelihoods, s.log_likelihoods,
                                   rtol=1e-9)
        np.testing.assert_allclose(b.virtual_delay_pmf,
                                   s.virtual_delay_pmf, rtol=1e-9)

    @pytest.mark.parametrize("kind,fit,restart_worker", KINDS)
    def test_sharded_batches_are_bit_identical(self, seq, kind, fit,
                                               restart_worker):
        """Batch rows are computed independently, so sharding the batch
        over workers changes nothing — not even the last ulp."""
        config = EMConfig(tol=1e-3, max_iter=25, n_restarts=3, seed=13,
                          freeze_loss_iters=2, backend="batched")
        f1 = fit(seq, 2, config=config)
        f4 = fit(seq, 2, config=config.replace(n_jobs=3))
        assert f1.log_likelihoods == f4.log_likelihoods
        assert np.array_equal(f1.virtual_delay_pmf, f4.virtual_delay_pmf)
        for a, b in zip(f1.model.parameters(), f4.model.parameters()):
            assert np.array_equal(a, b)


class TestBackendResolution:
    def test_auto_uses_state_width(self):
        config = EMConfig()
        assert config.backend == "auto"
        assert resolve_backend(config, "hmm", 4, 5) == "batched"
        assert resolve_backend(config, "hmm",
                               BATCHED_STATE_LIMIT + 1, 5) == "sequential"
        # MMHD width is N*M.
        assert resolve_backend(config, "mmhd", 4, 5) == "batched"
        assert resolve_backend(config, "mmhd", 16, 5) == "sequential"

    def test_explicit_backend_wins(self):
        assert resolve_backend(
            EMConfig(backend="sequential"), "hmm", 2, 5
        ) == "sequential"
        assert resolve_backend(
            EMConfig(backend="batched"), "mmhd", 16, 5
        ) == "batched"

    def test_env_var_default(self, monkeypatch):
        monkeypatch.setenv("REPRO_EM_BACKEND", "sequential")
        assert EMConfig().backend == "sequential"
        monkeypatch.setenv("REPRO_EM_BACKEND", "batched")
        assert EMConfig().backend == "batched"

    def test_invalid_backend_rejected(self, monkeypatch):
        with pytest.raises(ValueError, match="backend"):
            EMConfig(backend="gpu")
        monkeypatch.setenv("REPRO_EM_BACKEND", "gpu")
        with pytest.raises(ValueError, match="backend"):
            EMConfig()

    def test_replace_keeps_backend(self):
        config = EMConfig(backend="sequential")
        assert config.replace(n_jobs=2).backend == "sequential"
