"""Property tests for the batched restart-stacked E-step engine.

The batched backend promises *parity*, not approximation: same seeds in,
same trajectories out.  These tests pin that promise against the
sequential engine for both model families — per-restart log-likelihood
trails, gamma/xi sufficient statistics, and the winning restart — plus
the edge cases the masking logic has to get right (all restarts
converging early, a single-restart batch) and the backend-resolution
knob itself.
"""

import os

import numpy as np
import pytest

from repro.models import batched
from repro.models.base import EMConfig, SymbolIndex
from repro.models.batched import (
    BATCHED_STATE_LIMIT,
    _EStepAux,
    _BATCH_TYPES,
    batched_restart_fits,
    resolve_backend,
)
from repro.models.hmm import _fit_hmm_restart, fit_hmm
from repro.models.mmhd import _fit_mmhd_restart, fit_mmhd
from tests.conftest import make_markov_sequence

KINDS = [
    ("hmm", fit_hmm, _fit_hmm_restart),
    ("mmhd", fit_mmhd, _fit_mmhd_restart),
]


@pytest.fixture(scope="module")
def seq():
    sequence, _ = make_markov_sequence(n_steps=2500, seed=17)
    return sequence


def sequential_fits(seq, kind, restart_worker, config):
    index = SymbolIndex(seq)
    return [
        restart_worker((seq, 2, config, restart, index))
        for restart in range(config.n_restarts)
    ]


class TestBackendParity:
    @pytest.mark.parametrize("kind,fit,restart_worker", KINDS)
    def test_identical_trajectories_and_winner(self, seq, kind, fit,
                                               restart_worker):
        config = EMConfig(tol=1e-3, max_iter=30, n_restarts=3, seed=11,
                          freeze_loss_iters=2)
        batched_fits = batched_restart_fits(kind, seq, 2, config)
        seq_fits = sequential_fits(seq, kind, restart_worker, config)
        assert len(batched_fits) == config.n_restarts
        for b, s in zip(batched_fits, seq_fits):
            assert b.n_iter == s.n_iter
            assert b.converged == s.converged
            np.testing.assert_allclose(
                b.log_likelihoods, s.log_likelihoods, rtol=1e-9
            )
            np.testing.assert_allclose(
                b.virtual_delay_pmf, s.virtual_delay_pmf, rtol=1e-9
            )
            for pb, ps in zip(b.model.parameters(), s.model.parameters()):
                np.testing.assert_allclose(pb, ps, rtol=1e-9)
        # Identical winning restart — tolerance 0 on the argmax.
        batched_winner = int(np.argmax(
            [f.log_likelihood for f in batched_fits]
        ))
        seq_winner = int(np.argmax([f.log_likelihood for f in seq_fits]))
        assert batched_winner == seq_winner

    @pytest.mark.parametrize("kind,fit,restart_worker", KINDS)
    def test_gamma_xi_statistics_match(self, seq, kind, fit, restart_worker):
        """The batched E-step's sufficient statistics row-match the
        sequential E-step run model-by-model."""
        config = EMConfig(n_restarts=3, seed=23)
        index = SymbolIndex(seq)
        aux = _EStepAux(kind, index, config, 2)
        models = [
            batched._initial_model(kind, seq, 2, config, r)
            for r in range(3)
        ]
        batch = _BATCH_TYPES[kind].from_models(models)
        stats = batch.estep(aux)
        for row, model in enumerate(models):
            if kind == "mmhd":
                ref = model._estep(index, fast=config.fast_path)
                np.testing.assert_allclose(stats.loss_mass[row],
                                           ref.loss_mass, rtol=1e-9)
                np.testing.assert_allclose(stats.total_mass[row],
                                           ref.total_mass, rtol=1e-9)
            else:
                ref = model._estep(index)
                np.testing.assert_allclose(stats.joint_obs[row],
                                           ref.joint_obs, rtol=1e-9)
                np.testing.assert_allclose(stats.joint_loss[row],
                                           ref.joint_loss, rtol=1e-9)
            np.testing.assert_allclose(stats.gamma0[row], ref.gamma0,
                                       rtol=1e-9)
            np.testing.assert_allclose(stats.xi_sum[row], ref.xi_sum,
                                       rtol=1e-9)
            np.testing.assert_allclose(stats.loglik[row], ref.loglik,
                                       rtol=1e-12)

    @pytest.mark.parametrize("kind,fit,restart_worker", KINDS)
    def test_fit_level_parity(self, seq, kind, fit, restart_worker):
        """End to end through fit_hmm/fit_mmhd with the backend knob."""
        base = EMConfig(tol=1e-3, max_iter=30, n_restarts=3, seed=5,
                        freeze_loss_iters=2)
        b = fit(seq, 2, config=base.replace(backend="batched"))
        s = fit(seq, 2, config=base.replace(backend="sequential"))
        assert abs(b.log_likelihood - s.log_likelihood) <= (
            1e-9 * abs(s.log_likelihood)
        )
        assert b.n_iter == s.n_iter
        np.testing.assert_allclose(b.virtual_delay_pmf,
                                   s.virtual_delay_pmf, rtol=1e-9)

    @pytest.mark.parametrize("kind,fit,restart_worker", KINDS)
    def test_all_restarts_converge_early(self, seq, kind, fit,
                                         restart_worker):
        """A huge tolerance converges every row on its first unfrozen
        iteration; the masking bookkeeping must still finalize all."""
        config = EMConfig(tol=1e6, max_iter=30, n_restarts=3, seed=3,
                          freeze_loss_iters=1)
        batched_fits = batched_restart_fits(kind, seq, 2, config)
        seq_fits = sequential_fits(seq, kind, restart_worker, config)
        for b, s in zip(batched_fits, seq_fits):
            assert b.converged and s.converged
            assert b.n_iter == s.n_iter == 2
            np.testing.assert_allclose(
                b.log_likelihoods, s.log_likelihoods, rtol=1e-9
            )

    @pytest.mark.parametrize("kind,fit,restart_worker", KINDS)
    def test_single_restart(self, seq, kind, fit, restart_worker):
        config = EMConfig(tol=1e-3, max_iter=25, n_restarts=1, seed=9,
                          freeze_loss_iters=2)
        (b,) = batched_restart_fits(kind, seq, 2, config)
        (s,) = sequential_fits(seq, kind, restart_worker, config)
        assert b.n_iter == s.n_iter
        np.testing.assert_allclose(b.log_likelihoods, s.log_likelihoods,
                                   rtol=1e-9)
        np.testing.assert_allclose(b.virtual_delay_pmf,
                                   s.virtual_delay_pmf, rtol=1e-9)

    @pytest.mark.parametrize("kind,fit,restart_worker", KINDS)
    def test_sharded_batches_are_bit_identical(self, seq, kind, fit,
                                               restart_worker):
        """Batch rows are computed independently, so sharding the batch
        over workers changes nothing — not even the last ulp."""
        config = EMConfig(tol=1e-3, max_iter=25, n_restarts=3, seed=13,
                          freeze_loss_iters=2, backend="batched")
        f1 = fit(seq, 2, config=config)
        f4 = fit(seq, 2, config=config.replace(n_jobs=3))
        assert f1.log_likelihoods == f4.log_likelihoods
        assert np.array_equal(f1.virtual_delay_pmf, f4.virtual_delay_pmf)
        for a, b in zip(f1.model.parameters(), f4.model.parameters()):
            assert np.array_equal(a, b)


class TestBackendResolution:
    def test_auto_uses_state_width(self):
        config = EMConfig()
        assert config.backend == "auto"
        # Narrow states take the blocked scan kernel.
        assert resolve_backend(config, "hmm", 2, 5) == "blocked"
        assert resolve_backend(config, "hmm", 4, 5) == "blocked"
        assert resolve_backend(config, "hmm", 5, 5) == "batched"
        assert resolve_backend(config, "hmm",
                               BATCHED_STATE_LIMIT + 1, 5) == "sequential"
        # MMHD width is N*M.
        assert resolve_backend(config, "mmhd", 4, 5) == "batched"
        assert resolve_backend(config, "mmhd", 16, 5) == "sequential"

    def test_explicit_backend_wins(self):
        assert resolve_backend(
            EMConfig(backend="sequential"), "hmm", 2, 5
        ) == "sequential"
        assert resolve_backend(
            EMConfig(backend="batched"), "mmhd", 16, 5
        ) == "batched"

    def test_env_var_default(self, monkeypatch):
        monkeypatch.setenv("REPRO_EM_BACKEND", "sequential")
        assert EMConfig().backend == "sequential"
        monkeypatch.setenv("REPRO_EM_BACKEND", "batched")
        assert EMConfig().backend == "batched"

    def test_invalid_backend_rejected(self, monkeypatch):
        with pytest.raises(ValueError, match="backend"):
            EMConfig(backend="gpu")
        monkeypatch.setenv("REPRO_EM_BACKEND", "gpu")
        with pytest.raises(ValueError, match="backend"):
            EMConfig()

    def test_replace_keeps_backend(self):
        config = EMConfig(backend="sequential")
        assert config.replace(n_jobs=2).backend == "sequential"


# ----------------------------------------------------------------------
# Ragged multi-sequence batches
# ----------------------------------------------------------------------

from repro.models.base import PAD, ObservationSequence, SymbolStack  # noqa: E402
from repro.models.batched import (  # noqa: E402
    _RAGGED_TYPES,
    _RaggedAux,
    run_hedged_fit,
    run_hedged_fits,
)
from repro.streaming.online_em import _trail_collapsed  # noqa: E402


def ragged_sequences(lengths, seed0=40):
    return [make_markov_sequence(n_steps=n, seed=seed0 + i)[0]
            for i, n in enumerate(lengths)]


class TestSymbolStack:
    def test_padding_and_masks(self):
        seqs = ragged_sequences([50, 30]) + [ObservationSequence([2], 5)]
        stack = SymbolStack(seqs)
        assert stack.n_rows == 3
        assert stack.t_max == 50
        assert stack.lengths.tolist() == [50, 30, 1]
        assert stack.symbols0[1, 30:].tolist() == [PAD] * 20
        assert stack.valid[1, :30].all() and not stack.valid[1, 30:].any()
        assert int(stack.valid.sum()) == 81
        # observed and lost partition exactly the valid region
        assert np.array_equal(stack.valid, stack.observed | stack.lost)
        assert not (stack.observed & stack.lost).any()

    def test_row_index_matches_solo(self):
        seqs = ragged_sequences([60, 25])
        stack = SymbolStack(seqs)
        for row, seq in enumerate(seqs):
            solo = SymbolIndex(seq)
            np.testing.assert_array_equal(stack.row_index(row).symbols0,
                                          solo.symbols0)
            np.testing.assert_array_equal(
                stack.symbols0[row, : len(seq)], solo.symbols0
            )

    def test_rejects_empty_and_mismatched(self):
        with pytest.raises(ValueError, match="at least one"):
            SymbolStack([])
        with pytest.raises(ValueError, match="n_symbols"):
            SymbolStack([ObservationSequence([1], 5),
                         ObservationSequence([1], 4)])


class TestRaggedEStep:
    # Unequal lengths, a duplicate length (group of 2), a length-1 edge
    # row, and a row whose padded tail dominates the stack.
    LENGTHS = [900, 400, 900, 150]

    def _batch(self, kind, seqs, config, n_hidden=2):
        stack = SymbolStack(seqs)
        aux = _RaggedAux(kind, stack, config, n_hidden)
        models = [batched._initial_model(kind, seq, n_hidden, config, r)
                  for r, seq in enumerate(seqs)]
        batch = _RAGGED_TYPES[kind].from_models(
            models, np.arange(len(models))
        )
        return batch, aux, models

    @pytest.mark.parametrize("kind", ["hmm", "mmhd"])
    def test_mixed_lengths_match_solo_estep(self, kind):
        """Each row's statistics equal a solo E-step on that row alone,
        padding notwithstanding."""
        config = EMConfig(seed=31)
        seqs = ragged_sequences(self.LENGTHS)
        seqs.append(ObservationSequence([2], 5))  # length-1 edge row
        batch, aux, models = self._batch(kind, seqs, config)
        stats = batch.estep(aux)
        for row, (model, seq) in enumerate(zip(models, seqs)):
            index = SymbolIndex(seq)
            if kind == "mmhd":
                ref = model._estep(index, fast=config.fast_path)
                np.testing.assert_allclose(stats.loss_mass[row],
                                           ref.loss_mass, rtol=1e-9,
                                           atol=1e-300)
                np.testing.assert_allclose(stats.total_mass[row],
                                           ref.total_mass, rtol=1e-9)
            else:
                ref = model._estep(index)
                np.testing.assert_allclose(stats.joint_obs[row],
                                           ref.joint_obs, rtol=1e-9)
                np.testing.assert_allclose(stats.joint_loss[row],
                                           ref.joint_loss, rtol=1e-9,
                                           atol=1e-300)
            np.testing.assert_allclose(stats.gamma0[row], ref.gamma0,
                                       rtol=1e-9)
            np.testing.assert_allclose(stats.xi_sum[row], ref.xi_sum,
                                       rtol=1e-9, atol=1e-300)
            np.testing.assert_allclose(stats.loglik[row], ref.loglik,
                                       rtol=1e-12)

    @pytest.mark.parametrize("kind", ["hmm", "mmhd"])
    def test_mixed_batch_is_bitwise_equal_to_singletons(self, kind):
        """Stacking rows of unequal length changes nothing — not even
        the last ulp — versus a one-row ragged batch per sequence."""
        config = EMConfig(seed=37)
        seqs = ragged_sequences(self.LENGTHS, seed0=50)
        batch, aux, models = self._batch(kind, seqs, config)
        stats = batch.estep(aux)
        for row, seq in enumerate(seqs):
            solo_batch, solo_aux, _ = self._batch(kind, [seq], config)
            solo_batch.pi[0] = batch.pi[row]
            solo_batch.transition[0] = batch.transition[row]
            solo_batch.loss_c[0] = batch.loss_c[row]
            if kind == "hmm":
                solo_batch.emission[0] = batch.emission[row]
            solo = solo_batch.estep(solo_aux)
            assert stats.loglik[row] == solo.loglik[0]
            assert np.array_equal(stats.gamma0[row], solo.gamma0[0])
            assert np.array_equal(stats.xi_sum[row], solo.xi_sum[0])
            if kind == "mmhd":
                assert np.array_equal(stats.loss_mass[row],
                                      solo.loss_mass[0])
                assert np.array_equal(stats.total_mass[row],
                                      solo.total_mass[0])
            else:
                assert np.array_equal(stats.joint_obs[row],
                                      solo.joint_obs[0])
                assert np.array_equal(stats.joint_loss[row],
                                      solo.joint_loss[0])


class TestRaggedHedged:
    CONFIG = EMConfig(tol=1e-3, max_iter=30, n_restarts=2, seed=11,
                      freeze_loss_iters=2)

    @pytest.mark.parametrize("kind", ["hmm", "mmhd"])
    def test_multi_window_matches_solo(self, kind):
        """run_hedged_fits over windows of unequal length returns, per
        window, byte-identical results to solo run_hedged_fit calls."""
        lengths = [1200, 700, 1200, 300]
        seqs = ragged_sequences(lengths, seed0=60)
        configs = [self.CONFIG.replace(seed=100 + i)
                   for i in range(len(seqs))]
        warms = [batched._initial_model(kind, seq, 2, cfg, 7)
                 for seq, cfg in zip(seqs, configs)]
        fused, info = run_hedged_fits(kind, seqs, 2, configs, warms,
                                      _trail_collapsed)
        assert info["windows"] == len(seqs)
        # One warm row per window, plus n_restarts lazy cold rows for
        # each window that fell back.
        fallbacks = sum(1 for _, warm_used, _ in fused if not warm_used)
        assert info["rows"] == (len(seqs)
                                + fallbacks * self.CONFIG.n_restarts)
        assert info["t_max"] == max(lengths)
        assert 0.0 < info["pad_fraction"] < 1.0
        for (fitted, warm_used, reason), seq, cfg in zip(fused, seqs,
                                                         configs):
            warm = batched._initial_model(kind, seq, 2, cfg, 7)
            solo, solo_warm, solo_reason = run_hedged_fit(
                kind, seq, 2, cfg, warm, _trail_collapsed
            )
            assert warm_used == solo_warm
            assert reason == solo_reason
            assert fitted.n_iter == solo.n_iter
            assert fitted.converged == solo.converged
            assert fitted.log_likelihoods == solo.log_likelihoods
            assert np.array_equal(fitted.virtual_delay_pmf,
                                  solo.virtual_delay_pmf)
            for a, b in zip(fitted.model.parameters(),
                            solo.model.parameters()):
                assert np.array_equal(a, b)

    def test_fallback_window_matches_solo(self):
        """A degenerate warm state in one window falls back to its cold
        restarts without disturbing the healthy windows."""
        from repro.models.mmhd import MarkovModelHiddenDimension

        seqs = ragged_sequences([800, 500], seed0=70)
        configs = [self.CONFIG.replace(seed=200 + i) for i in range(2)]
        # pi pinned to one symbol + absorbing identity transition: the
        # first observed symbol change has zero probability.
        degenerate = MarkovModelHiddenDimension(
            np.eye(5)[0], np.eye(5), np.full(5, 0.01), 5
        )
        healthy = batched._initial_model("mmhd", seqs[0], 1, configs[0], 3)
        fused, _ = run_hedged_fits(
            "mmhd", seqs, 1, configs, [healthy, degenerate],
            _trail_collapsed,
        )
        assert fused[0][1] is True and fused[0][2] is None
        assert fused[1][1] is False
        assert fused[1][2] == "zero-likelihood"
        for (fitted, warm_used, reason), seq, cfg, warm in zip(
            fused, seqs, configs,
            [batched._initial_model("mmhd", seqs[0], 1, configs[0], 3),
             MarkovModelHiddenDimension(np.eye(5)[0], np.eye(5),
                                        np.full(5, 0.01), 5)],
        ):
            solo, solo_warm, solo_reason = run_hedged_fit(
                "mmhd", seq, 1, cfg, warm, _trail_collapsed
            )
            assert (warm_used, reason) == (solo_warm, solo_reason)
            assert fitted.log_likelihoods == solo.log_likelihoods
            assert np.array_equal(fitted.virtual_delay_pmf,
                                  solo.virtual_delay_pmf)

    def test_rejects_mismatched_configs(self):
        seqs = ragged_sequences([300, 300], seed0=80)
        warms = [batched._initial_model("mmhd", seq, 1, self.CONFIG, 0)
                 for seq in seqs]
        with pytest.raises(ValueError, match="seed"):
            run_hedged_fits(
                "mmhd", seqs, 1,
                [self.CONFIG, self.CONFIG.replace(tol=1e-5)],
                warms, _trail_collapsed,
            )

    def test_empty_batch(self):
        results, info = run_hedged_fits("mmhd", [], 1, [], [],
                                        _trail_collapsed)
        assert results == []
        assert info["windows"] == 0
