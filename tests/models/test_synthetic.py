"""Tests for the synthetic generators and model-order selection."""

import numpy as np
import pytest

from repro.models.base import EMConfig
from repro.models.mmhd import fit_mmhd
from repro.models.selection import ModelSelection, bic, select_n_hidden
from repro.models.synthetic import (
    sticky_markov_sequence,
    two_population_sequence,
)


class TestStickyGenerator:
    def test_returns_valid_sequence_and_distribution(self):
        seq, true_g = sticky_markov_sequence(n_steps=2000, seed=1)
        assert len(seq) == 2000
        assert true_g.shape == (5,)
        assert true_g.sum() == pytest.approx(1.0)

    def test_loss_profile_concentrates_high(self):
        _, true_g = sticky_markov_sequence(n_steps=8000, seed=2)
        assert true_g[-1] > 0.5

    def test_custom_loss_profile(self):
        seq, true_g = sticky_markov_sequence(
            n_steps=6000, loss_given_symbol=[0.3, 0.0001, 0.0001, 0.0001,
                                            0.0001], seed=3,
        )
        assert true_g[0] > 0.8

    def test_deterministic(self):
        a = sticky_markov_sequence(seed=4)[0].symbols
        b = sticky_markov_sequence(seed=4)[0].symbols
        np.testing.assert_array_equal(a, b)

    def test_validation(self):
        with pytest.raises(ValueError):
            sticky_markov_sequence(stickiness=1.0)
        with pytest.raises(ValueError):
            sticky_markov_sequence(loss_given_symbol=[0.1, 0.1])

    def test_em_recovers_truth(self):
        seq, true_g = sticky_markov_sequence(n_steps=6000, seed=5)
        fitted = fit_mmhd(seq, n_hidden=1,
                          config=EMConfig(max_iter=50, tol=1e-3))
        tv = 0.5 * np.abs(fitted.virtual_delay_pmf - true_g).sum()
        assert tv < 0.08


class TestTwoPopulationGenerator:
    def test_split_loss_mass(self):
        _, true_g = two_population_sequence(n_steps=6000, seed=1)
        assert true_g[1] > 0.2   # low population at symbol 2
        assert true_g[4] > 0.2   # high population at symbol 5

    def test_wdcl_rejects_on_truth(self):
        from repro.core import DelayDistribution, wdcl_test

        _, true_g = two_population_sequence(n_steps=6000, seed=2)
        assert not wdcl_test(DelayDistribution(true_g), 0.06, 0.0).accepted

    def test_validation(self):
        with pytest.raises(ValueError):
            two_population_sequence(low_symbol=4, high_symbol=3)

    def test_symbols_in_range(self):
        seq, _ = two_population_sequence(n_steps=1000, seed=3)
        observed = seq.symbols[seq.symbols > 0]
        assert observed.min() >= 1 and observed.max() <= 5


class TestSelection:
    @pytest.fixture(scope="class")
    def selection(self):
        seq, _ = sticky_markov_sequence(n_steps=3000, seed=6)
        return select_n_hidden(
            seq, candidates=(1, 2),
            config=EMConfig(max_iter=25, tol=1e-2),
        )

    def test_returns_all_candidates(self, selection):
        assert set(selection.fits) == {1, 2}
        assert set(selection.bics) == {1, 2}

    def test_best_is_bic_minimal(self, selection):
        assert selection.bics[selection.best_n] == min(selection.bics.values())

    def test_bic_penalises_parameters(self):
        # The N=2 MMHD has ~4x the transitions; on a chain that N=1
        # explains fully, BIC must prefer N=1.
        seq, _ = sticky_markov_sequence(n_steps=3000, seed=7)
        selection = select_n_hidden(seq, candidates=(1, 2),
                                    config=EMConfig(max_iter=25, tol=1e-2))
        assert selection.best_n == 1

    def test_bic_value_formula(self):
        seq, _ = sticky_markov_sequence(n_steps=1500, seed=8)
        fitted = fit_mmhd(seq, n_hidden=1,
                          config=EMConfig(max_iter=15, tol=1e-2))
        value = bic(fitted, seq)
        # Reconstruct: k = (S-1) + S(S-1) + M with S = M = 5.
        k = 4 + 20 + 5
        expected = k * np.log(len(seq)) - 2 * fitted.log_likelihood
        assert value == pytest.approx(expected)

    def test_summary_marks_selection(self, selection):
        text = selection.summary()
        assert "selected" in text

    def test_empty_candidates_rejected(self):
        seq, _ = sticky_markov_sequence(n_steps=500, seed=9)
        with pytest.raises(ValueError):
            select_n_hidden(seq, candidates=())
