"""Tests for model infrastructure: observation encoding and EM config."""

import numpy as np
import pytest

from repro.models.base import (
    LOSS,
    EMConfig,
    ObservationSequence,
    floor_and_normalize,
    max_param_change,
)


class TestObservationSequence:
    def test_valid_sequence(self):
        seq = ObservationSequence([1, 2, LOSS, 3], n_symbols=3)
        assert len(seq) == 4
        assert seq.n_losses == 1
        assert seq.loss_rate == 0.25

    def test_out_of_range_symbol_rejected(self):
        with pytest.raises(ValueError):
            ObservationSequence([1, 4], n_symbols=3)
        with pytest.raises(ValueError):
            ObservationSequence([0, 1], n_symbols=3)

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            ObservationSequence([], n_symbols=3)

    def test_all_losses_rejected(self):
        with pytest.raises(ValueError):
            ObservationSequence([LOSS, LOSS], n_symbols=3)

    def test_2d_rejected(self):
        with pytest.raises(ValueError):
            ObservationSequence([[1, 2]], n_symbols=3)

    def test_zero_based_shifts_observations_only(self):
        seq = ObservationSequence([1, LOSS, 3], n_symbols=3)
        np.testing.assert_array_equal(seq.zero_based(), [0, LOSS, 2])

    def test_losses_mask(self):
        seq = ObservationSequence([1, LOSS, 2], n_symbols=2)
        np.testing.assert_array_equal(seq.losses, [False, True, False])

    def test_empirical_pmf_sums_to_one(self):
        seq = ObservationSequence([1, 1, 2, LOSS], n_symbols=3)
        pmf = seq.empirical_symbol_pmf()
        assert pmf.sum() == pytest.approx(1.0)
        assert pmf[0] > pmf[2]  # symbol 1 more frequent than unseen 3

    def test_empirical_pmf_smoothing_keeps_all_positive(self):
        seq = ObservationSequence([1] * 10, n_symbols=5)
        assert (seq.empirical_symbol_pmf() > 0).all()


class TestEMConfig:
    def test_defaults(self):
        config = EMConfig()
        assert config.tol == 1e-4
        assert config.freeze_loss_iters == 5
        assert config.data_driven_init

    def test_validation(self):
        with pytest.raises(ValueError):
            EMConfig(tol=0)
        with pytest.raises(ValueError):
            EMConfig(max_iter=0)
        with pytest.raises(ValueError):
            EMConfig(n_restarts=0)
        with pytest.raises(ValueError):
            EMConfig(freeze_loss_iters=-1)


class TestHelpers:
    def test_floor_and_normalize_vector(self):
        out = floor_and_normalize(np.array([0.0, 1.0]), 1e-6)
        assert out.sum() == pytest.approx(1.0)
        assert out[0] > 0

    def test_floor_and_normalize_matrix_rows(self):
        out = floor_and_normalize(np.array([[0.0, 2.0], [1.0, 1.0]]), 1e-6)
        np.testing.assert_allclose(out.sum(axis=1), [1.0, 1.0])

    def test_max_param_change(self):
        old = [np.array([1.0, 2.0]), np.array([[0.0]])]
        new = [np.array([1.0, 2.5]), np.array([[0.1]])]
        assert max_param_change(old, new) == pytest.approx(0.5)
