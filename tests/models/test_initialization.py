"""Tests for initial-parameter strategies."""

import numpy as np
import pytest

from repro.models.base import LOSS, ObservationSequence
from repro.models.initialization import (
    hmm_initial_parameters,
    mmhd_initial_parameters,
    observed_bigram_matrix,
)


@pytest.fixture
def sticky_seq():
    # 1,1,1,2,2,2,... strongly sticky observed bigrams.
    symbols = [1] * 20 + [2] * 20 + [LOSS] + [1] * 20
    return ObservationSequence(symbols, n_symbols=3)


class TestBigrams:
    def test_rows_are_distributions(self, sticky_seq):
        bigrams = observed_bigram_matrix(sticky_seq)
        np.testing.assert_allclose(bigrams.sum(axis=1), 1.0)

    def test_sticky_data_gives_sticky_rows(self, sticky_seq):
        bigrams = observed_bigram_matrix(sticky_seq)
        assert bigrams[0, 0] > 0.8
        assert bigrams[1, 1] > 0.8

    def test_loss_adjacent_pairs_skipped(self):
        # Transition 2 -> LOSS -> 1 must not count as 2 -> 1.
        seq = ObservationSequence([2, LOSS, 1], n_symbols=2)
        bigrams = observed_bigram_matrix(seq, smoothing=0.5)
        # Only smoothing mass: rows are uniform.
        np.testing.assert_allclose(bigrams, 0.5)

    def test_smoothing_keeps_all_transitions_possible(self, sticky_seq):
        assert (observed_bigram_matrix(sticky_seq) > 0).all()


class TestHMMInit:
    def test_shapes(self, sticky_seq):
        rng = np.random.default_rng(0)
        pi, transition, emission, c = hmm_initial_parameters(sticky_seq, 3, rng)
        assert pi.shape == (3,)
        assert transition.shape == (3, 3)
        assert emission.shape == (3, 3)
        assert c.shape == (3,)

    def test_stochasticity(self, sticky_seq):
        rng = np.random.default_rng(0)
        pi, transition, emission, c = hmm_initial_parameters(sticky_seq, 2, rng)
        assert pi.sum() == pytest.approx(1.0)
        np.testing.assert_allclose(transition.sum(axis=1), 1.0)
        np.testing.assert_allclose(emission.sum(axis=1), 1.0)
        assert ((c > 0) & (c < 1)).all()

    def test_emission_rows_differ_between_states(self, sticky_seq):
        rng = np.random.default_rng(0)
        _, _, emission, _ = hmm_initial_parameters(sticky_seq, 2, rng)
        assert not np.allclose(emission[0], emission[1])

    def test_invalid_hidden_count(self, sticky_seq):
        with pytest.raises(ValueError):
            hmm_initial_parameters(sticky_seq, 0, np.random.default_rng(0))


class TestMMHDInit:
    def test_shapes(self, sticky_seq):
        rng = np.random.default_rng(0)
        pi, transition, c = mmhd_initial_parameters(sticky_seq, 2, rng)
        assert pi.shape == (6,)
        assert transition.shape == (6, 6)
        assert c.shape == (3,)

    def test_uniform_initial_distribution(self, sticky_seq):
        rng = np.random.default_rng(0)
        pi, _, _ = mmhd_initial_parameters(sticky_seq, 2, rng)
        np.testing.assert_allclose(pi, 1 / 6)

    def test_data_driven_blocks_follow_bigrams(self, sticky_seq):
        rng = np.random.default_rng(0)
        _, transition, _ = mmhd_initial_parameters(sticky_seq, 1, rng,
                                                   data_driven=True)
        # Sticky observed dynamics: self-transition for symbol 1 dominates.
        assert transition[0, 0] > transition[0, 1]

    def test_random_init_differs_from_data_driven(self, sticky_seq):
        rng_a = np.random.default_rng(0)
        rng_b = np.random.default_rng(0)
        _, driven, _ = mmhd_initial_parameters(sticky_seq, 1, rng_a,
                                               data_driven=True)
        _, random_, _ = mmhd_initial_parameters(sticky_seq, 1, rng_b,
                                                data_driven=False)
        assert not np.allclose(driven, random_)

    def test_rows_stochastic_either_way(self, sticky_seq):
        for data_driven in (True, False):
            rng = np.random.default_rng(1)
            _, transition, _ = mmhd_initial_parameters(
                sticky_seq, 2, rng, data_driven=data_driven
            )
            np.testing.assert_allclose(transition.sum(axis=1), 1.0)

    def test_invalid_hidden_count(self, sticky_seq):
        with pytest.raises(ValueError):
            mmhd_initial_parameters(sticky_seq, 0, np.random.default_rng(0))
