"""Serial and parallel fits must be numerically identical.

The contract (ISSUE: parallel EM execution layer): for every entry point
that accepts ``n_jobs``, the result is a pure function of the inputs and
the seed — never of the worker count, worker scheduling, or completion
order.  These tests pin that with exact (``rtol=0, atol=0``) comparisons.
"""

import numpy as np
import pytest

from repro.core.bootstrap import bootstrap_identification
from repro.core.identify import IdentifyConfig
from repro.models.base import EMConfig
from repro.models.hmm import fit_hmm
from repro.models.mmhd import fit_mmhd
from repro.models.selection import select_n_hidden
from tests.conftest import make_markov_sequence

N_JOBS = [1, 4]


@pytest.fixture(scope="module")
def seq():
    sequence, _ = make_markov_sequence(n_steps=1500, seed=5)
    return sequence


def _config(n_jobs, **overrides):
    base = dict(tol=1e-3, max_iter=40, n_restarts=3, seed=9,
                freeze_loss_iters=2, n_jobs=n_jobs)
    base.update(overrides)
    return EMConfig(**base)


def _assert_fits_identical(a, b):
    assert np.allclose(a.virtual_delay_pmf, b.virtual_delay_pmf,
                       rtol=0, atol=0)
    assert a.log_likelihood == b.log_likelihood
    assert a.n_iter == b.n_iter
    assert a.converged == b.converged
    assert np.allclose(a.log_likelihoods, b.log_likelihoods, rtol=0, atol=0)


class TestFitDeterminism:
    @pytest.mark.parametrize("fitter", [fit_hmm, fit_mmhd],
                             ids=["hmm", "mmhd"])
    def test_parallel_matches_serial(self, seq, fitter):
        serial = fitter(seq, n_hidden=2, config=_config(1))
        parallel = fitter(seq, n_hidden=2, config=_config(4))
        _assert_fits_identical(serial, parallel)

    @pytest.mark.parametrize("fitter", [fit_hmm, fit_mmhd],
                             ids=["hmm", "mmhd"])
    def test_repeated_parallel_fits_identical(self, seq, fitter):
        first = fitter(seq, n_hidden=2, config=_config(4))
        second = fitter(seq, n_hidden=2, config=_config(4))
        _assert_fits_identical(first, second)

    def test_restarts_explore_distinct_initialisations(self, seq):
        """Multi-restart must actually search: with data-driven init off,
        different restart streams reach different likelihoods at a tight
        iteration budget, and the reduction picks the best."""
        config = _config(1, n_restarts=4, max_iter=5, data_driven_init=False)
        fitted = fit_mmhd(seq, n_hidden=2, config=config)
        singles = [
            fit_mmhd(seq, n_hidden=2,
                     config=_config(1, n_restarts=1, max_iter=5,
                                    data_driven_init=False))
        ]
        assert fitted.log_likelihood >= singles[0].log_likelihood

    def test_fast_path_matches_dense(self, seq):
        fast = fit_mmhd(seq, n_hidden=2, config=_config(1, fast_path=True))
        dense = fit_mmhd(seq, n_hidden=2, config=_config(1, fast_path=False))
        assert np.allclose(fast.virtual_delay_pmf, dense.virtual_delay_pmf,
                           atol=1e-8)
        assert np.isclose(fast.log_likelihood, dense.log_likelihood,
                          rtol=1e-9)


class TestSelectionDeterminism:
    def test_parallel_matches_serial(self, seq):
        kwargs = dict(candidates=(1, 2), config=_config(1, n_restarts=1))
        serial = select_n_hidden(seq, n_jobs=1, **kwargs)
        parallel = select_n_hidden(seq, n_jobs=4, **kwargs)
        assert serial.best_n == parallel.best_n
        for n in serial.bics:
            assert serial.bics[n] == parallel.bics[n]
            _assert_fits_identical(serial.fits[n], parallel.fits[n])


class TestBootstrapDeterminism:
    @pytest.fixture(scope="class")
    def observation(self):
        # A synthetic PathObservation via the probe-trace surface is
        # heavyweight; the netsim runner is the natural source.
        from repro.experiments.runner import run_scenario
        from repro.experiments.scenarios import strong_dcl_scenario
        result = run_scenario(strong_dcl_scenario(1.0), seed=0,
                              duration=30.0, warmup=5.0)
        return result.trace.observation()

    def test_parallel_matches_serial(self, observation):
        config = IdentifyConfig(em=EMConfig(tol=1e-2, max_iter=25))
        kwargs = dict(config=config, n_replicates=4, seed=2,
                      replicate_max_iter=12)
        serial = bootstrap_identification(observation, n_jobs=1, **kwargs)
        parallel = bootstrap_identification(observation, n_jobs=4, **kwargs)
        assert np.allclose(serial.pmfs, parallel.pmfs, rtol=0, atol=0)
        assert np.array_equal(serial.sdcl_accepts, parallel.sdcl_accepts)
        assert np.array_equal(serial.wdcl_accepts, parallel.wdcl_accepts)
        lo_s, hi_s = serial.pmf_interval()
        lo_p, hi_p = parallel.pmf_interval()
        assert np.allclose(lo_s, lo_p, rtol=0, atol=0)
        assert np.allclose(hi_s, hi_p, rtol=0, atol=0)
