"""Tests for the HMM with loss-as-missing observations."""

import numpy as np
import pytest

from repro.models.base import LOSS, EMConfig, ObservationSequence
from repro.models.hmm import HiddenMarkovModel, fit_hmm
from tests.conftest import make_markov_sequence


def simple_model(n_hidden=2, n_symbols=3, loss=0.1):
    pi = np.full(n_hidden, 1 / n_hidden)
    transition = np.full((n_hidden, n_hidden), 1 / n_hidden)
    emission = np.full((n_hidden, n_symbols), 1 / n_symbols)
    c = np.full(n_symbols, loss)
    return HiddenMarkovModel(pi, transition, emission, c)


class TestConstruction:
    def test_shape_validation(self):
        with pytest.raises(ValueError):
            HiddenMarkovModel(np.ones(2) / 2, np.ones((3, 3)) / 3,
                              np.ones((2, 3)) / 3, np.full(3, 0.1))
        with pytest.raises(ValueError):
            HiddenMarkovModel(np.ones(2) / 2, np.ones((2, 2)) / 2,
                              np.ones((2, 3)) / 3, np.full(2, 0.1))

    def test_stochasticity_enforced(self):
        with pytest.raises(ValueError):
            HiddenMarkovModel(np.array([0.7, 0.7]), np.ones((2, 2)) / 2,
                              np.ones((2, 3)) / 3, np.full(3, 0.1))

    def test_loss_probabilities_in_open_interval(self):
        with pytest.raises(ValueError):
            HiddenMarkovModel(np.ones(1), np.ones((1, 1)),
                              np.ones((1, 2)) / 2, np.array([0.0, 0.5]))


class TestLikelihood:
    def test_uniform_model_likelihood_analytic(self):
        # Under the fully uniform model each observed symbol has
        # probability (1/M)(1-c) and each loss probability c.
        model = simple_model(loss=0.2)
        seq = ObservationSequence([1, 2, LOSS, 3], n_symbols=3)
        expected = 3 * np.log((1 / 3) * 0.8) + np.log(0.2)
        assert model.log_likelihood(seq) == pytest.approx(expected)

    def test_likelihood_increases_with_each_em_step(self, markov_sequence):
        seq, _ = markov_sequence
        model = simple_model(n_hidden=2, n_symbols=5)
        previous = model.log_likelihood(seq)
        for _ in range(5):
            model, _ = model.em_step(seq)
            current = model.log_likelihood(seq)
            assert current >= previous - 1e-6
            previous = current


class TestEMFit:
    def test_fit_recovers_loss_concentration(self):
        seq, true_g = make_markov_sequence(seed=3)
        fitted = fit_hmm(seq, n_hidden=3,
                         config=EMConfig(max_iter=80, freeze_loss_iters=3))
        # HMM is the weaker model (paper Fig. 8: it deviates from the true
        # distribution where MMHD matches); it must still push the loss
        # mass away from the low-delay symbols, but we do not require the
        # MMHD-level accuracy that tests/models/test_mmhd.py asserts.
        upper_mass = fitted.virtual_delay_pmf[2:].sum()
        assert upper_mass > 0.6
        assert fitted.virtual_delay_pmf[:2].sum() < 0.2

    def test_pmf_is_distribution(self, markov_sequence, fast_em):
        seq, _ = markov_sequence
        fitted = fit_hmm(seq, n_hidden=2, config=fast_em)
        pmf = fitted.virtual_delay_pmf
        assert pmf.shape == (5,)
        assert pmf.sum() == pytest.approx(1.0)
        assert (pmf >= 0).all()

    def test_loglik_trail_monotone(self, markov_sequence):
        # Monotone likelihood holds for the plain MLE update (zero prior);
        # the default MAP update ascends the posterior instead.
        seq, _ = markov_sequence
        config = EMConfig(tol=1e-3, max_iter=60, freeze_loss_iters=3,
                          loss_prior_losses=0.0, loss_prior_observations=0.0)
        fitted = fit_hmm(seq, n_hidden=2, config=config)
        trail = np.array(fitted.log_likelihoods[config.freeze_loss_iters:])
        assert (np.diff(trail) >= -1e-6).all()

    def test_restarts_pick_best_likelihood(self, markov_sequence):
        seq, _ = markov_sequence
        config_multi = EMConfig(max_iter=30, n_restarts=3, seed=10)
        config_single = EMConfig(max_iter=30, n_restarts=1, seed=10)
        multi = fit_hmm(seq, n_hidden=2, config=config_multi)
        single = fit_hmm(seq, n_hidden=2, config=config_single)
        assert multi.log_likelihood >= single.log_likelihood - 1e-6

    def test_single_hidden_state_works(self, markov_sequence, fast_em):
        seq, _ = markov_sequence
        fitted = fit_hmm(seq, n_hidden=1, config=fast_em)
        assert fitted.virtual_delay_pmf.sum() == pytest.approx(1.0)

    def test_converged_flag_set_on_easy_data(self):
        seq, _ = make_markov_sequence(n_steps=2000, seed=1)
        fitted = fit_hmm(seq, n_hidden=1,
                         config=EMConfig(tol=1e-3, max_iter=200))
        assert fitted.converged

    def test_cdf_helper(self, markov_sequence, fast_em):
        seq, _ = markov_sequence
        fitted = fit_hmm(seq, n_hidden=2, config=fast_em)
        cdf = fitted.virtual_delay_cdf()
        assert cdf[-1] == pytest.approx(1.0)
        assert (np.diff(cdf) >= -1e-12).all()


class TestVirtualDelayPosterior:
    def test_no_losses_raises(self):
        model = simple_model()
        seq = ObservationSequence([1, 2, 3], n_symbols=3)
        with pytest.raises(ValueError):
            model.virtual_delay_pmf(seq)

    def test_posterior_respects_emissions(self):
        # State-independent case: G(m) proportional to B(m) * c(m).
        pi = np.array([1.0])
        transition = np.array([[1.0]])
        emission = np.array([[0.5, 0.3, 0.2]])
        c = np.array([0.01, 0.01, 0.5])
        model = HiddenMarkovModel(pi, transition, emission, c)
        seq = ObservationSequence([1, LOSS, 1], n_symbols=3)
        pmf = model.virtual_delay_pmf(seq)
        expected = emission[0] * c
        expected /= expected.sum()
        np.testing.assert_allclose(pmf, expected, atol=1e-9)


class TestLossFreeGuards:
    """Loss-free sequences fail fast with an actionable message."""

    def test_em_step_raises_with_loss_count(self):
        model = simple_model()
        seq = ObservationSequence([1, 2, 3, 2], n_symbols=3)
        with pytest.raises(ValueError, match="0 losses in 4 observations"):
            model.em_step(seq)

    def test_fit_raises_before_any_em_work(self):
        seq = ObservationSequence([1, 2, 3, 2, 1], n_symbols=3)
        with pytest.raises(ValueError, match="fit_hmm requires lost probes"):
            fit_hmm(seq, n_hidden=2)

    def test_sequence_with_losses_unaffected(self):
        model = simple_model()
        seq = ObservationSequence([1, LOSS, 3, 2], n_symbols=3)
        pmf = model.virtual_delay_pmf(seq)
        assert pmf.shape == (3,)
        assert pmf.sum() == pytest.approx(1.0)
