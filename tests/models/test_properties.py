"""Property-based tests (hypothesis) for the model layer."""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.models.base import LOSS, EMConfig, ObservationSequence
from repro.models.hmm import HiddenMarkovModel
from repro.models.mmhd import MarkovModelHiddenDimension


def sequences(min_size=12, max_size=120, n_symbols=4):
    """Observation sequences with at least one loss and one observation."""
    symbol = st.integers(min_value=1, max_value=n_symbols)
    body = st.lists(st.one_of(symbol, st.just(LOSS)),
                    min_size=min_size - 2, max_size=max_size - 2)
    return body.map(lambda xs: ObservationSequence([1] + xs + [LOSS], n_symbols))


def random_hmm(rng, n_hidden, n_symbols):
    pi = rng.dirichlet(np.ones(n_hidden))
    transition = rng.dirichlet(np.ones(n_hidden), size=n_hidden)
    emission = rng.dirichlet(np.ones(n_symbols), size=n_hidden)
    c = rng.uniform(0.05, 0.5, size=n_symbols)
    return HiddenMarkovModel(pi, transition, emission, c)


def random_mmhd(rng, n_hidden, n_symbols):
    n_states = n_hidden * n_symbols
    pi = rng.dirichlet(np.ones(n_states))
    transition = rng.dirichlet(np.ones(n_states), size=n_states)
    c = rng.uniform(0.05, 0.5, size=n_symbols)
    return MarkovModelHiddenDimension(pi, transition, c, n_symbols)


class TestHMMProperties:
    @settings(max_examples=25, deadline=None)
    @given(seq=sequences(), seed=st.integers(0, 100))
    def test_em_never_decreases_likelihood(self, seq, seed):
        rng = np.random.default_rng(seed)
        model = random_hmm(rng, n_hidden=2, n_symbols=4)
        before = model.log_likelihood(seq)
        new_model, reported = model.em_step(seq)
        after = new_model.log_likelihood(seq)
        # em_step reports the likelihood of the *current* parameters.
        np.testing.assert_allclose(reported, before, rtol=1e-9)
        assert after >= before - 1e-7

    @settings(max_examples=25, deadline=None)
    @given(seq=sequences(), seed=st.integers(0, 100))
    def test_posterior_is_distribution(self, seq, seed):
        rng = np.random.default_rng(seed)
        model = random_hmm(rng, n_hidden=2, n_symbols=4)
        pmf = model.virtual_delay_pmf(seq)
        assert pmf.shape == (4,)
        assert abs(pmf.sum() - 1.0) < 1e-9
        assert (pmf >= -1e-12).all()

    @settings(max_examples=25, deadline=None)
    @given(seq=sequences(), seed=st.integers(0, 100))
    def test_em_step_produces_valid_model(self, seq, seed):
        rng = np.random.default_rng(seed)
        model = random_hmm(rng, n_hidden=2, n_symbols=4)
        new_model, _ = model.em_step(seq)
        np.testing.assert_allclose(new_model.pi.sum(), 1.0, atol=1e-9)
        np.testing.assert_allclose(new_model.transition.sum(axis=1), 1.0,
                                   atol=1e-9)
        np.testing.assert_allclose(new_model.emission.sum(axis=1), 1.0,
                                   atol=1e-9)
        assert ((new_model.loss_given_symbol > 0)
                & (new_model.loss_given_symbol < 1)).all()


class TestMMHDProperties:
    @settings(max_examples=25, deadline=None)
    @given(seq=sequences(), seed=st.integers(0, 100))
    def test_em_never_decreases_likelihood(self, seq, seed):
        rng = np.random.default_rng(seed)
        model = random_mmhd(rng, n_hidden=2, n_symbols=4)
        before = model.log_likelihood(seq)
        new_model, _ = model.em_step(seq)
        assert new_model.log_likelihood(seq) >= before - 1e-7

    @settings(max_examples=25, deadline=None)
    @given(seq=sequences(), seed=st.integers(0, 100))
    def test_posterior_is_distribution(self, seq, seed):
        rng = np.random.default_rng(seed)
        model = random_mmhd(rng, n_hidden=2, n_symbols=4)
        pmf = model.virtual_delay_pmf(seq)
        assert abs(pmf.sum() - 1.0) < 1e-9
        assert (pmf >= -1e-12).all()

    @settings(max_examples=25, deadline=None)
    @given(seq=sequences(), seed=st.integers(0, 100))
    def test_observed_instants_concentrate_on_observed_symbol(self, seq, seed):
        # gamma at an observed instant must sit entirely on that symbol's
        # column of the state space.
        rng = np.random.default_rng(seed)
        model = random_mmhd(rng, n_hidden=2, n_symbols=4)
        gamma, _, _ = model._expectations(seq)
        occupancy = model._symbol_occupancy(gamma)
        symbols0 = seq.zero_based()
        for t in range(len(seq)):
            if symbols0[t] != LOSS:
                assert occupancy[t, symbols0[t]] > 1.0 - 1e-9

    @settings(max_examples=25, deadline=None)
    @given(seq=sequences(), seed=st.integers(0, 100))
    def test_em_step_produces_valid_model(self, seq, seed):
        rng = np.random.default_rng(seed)
        model = random_mmhd(rng, n_hidden=2, n_symbols=4)
        new_model, _ = model.em_step(seq)
        np.testing.assert_allclose(new_model.pi.sum(), 1.0, atol=1e-9)
        np.testing.assert_allclose(new_model.transition.sum(axis=1), 1.0,
                                   atol=1e-9)
        assert ((new_model.loss_given_symbol > 0)
                & (new_model.loss_given_symbol < 1)).all()
